//! Local (scratchpad) memories.
//!
//! The paper's DBA processors replace data caches with *local memories*
//! ("local store", Section 3.2): software-managed SRAMs with single-cycle
//! access. The extended configurations use dual-port local memories so that
//! the data prefetcher can stream data in and out while the core executes.
//!
//! [`LocalMemory`] enforces bounds, natural alignment, and a per-cycle access
//! budget per port. The simulator calls [`LocalMemory::begin_cycle`] once per
//! simulated cycle to reset the budgets; an over-subscribed port reports a
//! structural hazard instead of silently time-travelling data.

use crate::error::MemError;
use crate::Width;
use dbx_faults::ecc::{parity_check, parity_encode, secded_decode, secded_encode, SecdedResult};
use dbx_faults::{FaultCounters, ProtectionKind};
use std::collections::BTreeSet;

/// Identifies which port of a (potentially dual-ported) local memory is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPort {
    /// Port connected to the processor's load–store unit.
    Core,
    /// Port connected to the data prefetcher / interconnection network.
    Prefetcher,
}

/// A software-managed scratchpad memory with single-cycle access.
#[derive(Debug, Clone)]
pub struct LocalMemory {
    name: &'static str,
    base: u32,
    data: Vec<u8>,
    dual_port: bool,
    core_accesses_this_cycle: u32,
    pf_accesses_this_cycle: u32,
    /// Lifetime statistics: total accesses through the core port.
    pub core_accesses: u64,
    /// Lifetime statistics: total accesses through the prefetcher port.
    pub pf_accesses: u64,
    /// Lifetime statistics: total bytes moved (both ports).
    pub bytes_moved: u64,
    /// Protection scheme of this array (parity / SECDED / none).
    protection: ProtectionKind,
    /// Stored check code per 32-bit word (empty when unprotected).
    codes: Vec<u8>,
    /// Word indices holding an injected upset the array has not yet
    /// corrected or been rewritten over — used to account *escaped*
    /// (silently consumed) corruption.
    tainted: BTreeSet<usize>,
    /// Hard (stuck-at) faults: `(word index, bit, forced value)`,
    /// re-applied after every write that touches the word.
    stuck: Vec<(usize, u8, bool)>,
    /// Resilience accounting: injected/corrected/detected/escaped.
    pub faults: FaultCounters,
}

impl LocalMemory {
    /// Creates a single-port local memory of `size` bytes mapped at `base`.
    pub fn new(name: &'static str, base: u32, size: usize) -> Self {
        Self::with_ports(name, base, size, false)
    }

    /// Creates a dual-port local memory (core + prefetcher ports).
    pub fn new_dual_port(name: &'static str, base: u32, size: usize) -> Self {
        Self::with_ports(name, base, size, true)
    }

    fn with_ports(name: &'static str, base: u32, size: usize, dual_port: bool) -> Self {
        assert!(size > 0, "local memory must be non-empty");
        assert_eq!(base % 16, 0, "local memory base must be 128-bit aligned");
        LocalMemory {
            name,
            base,
            data: vec![0; size],
            dual_port,
            core_accesses_this_cycle: 0,
            pf_accesses_this_cycle: 0,
            core_accesses: 0,
            pf_accesses: 0,
            bytes_moved: 0,
            protection: ProtectionKind::None,
            codes: Vec::new(),
            tainted: BTreeSet::new(),
            stuck: Vec::new(),
            faults: FaultCounters::default(),
        }
    }

    /// Name of this memory (used in error messages and reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Base address of the mapped region.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the memory in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Whether this memory has a second (prefetcher) port.
    pub fn is_dual_port(&self) -> bool {
        self.dual_port
    }

    /// True if an access of `len` bytes at `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: u32, len: usize) -> bool {
        let a = addr as u64;
        let b = self.base as u64;
        a >= b && a + len as u64 <= b + self.data.len() as u64
    }

    /// Resets the per-cycle port budgets. Call once per simulated cycle.
    #[inline]
    pub fn begin_cycle(&mut self) {
        self.core_accesses_this_cycle = 0;
        self.pf_accesses_this_cycle = 0;
    }

    /// Current protection scheme of the array.
    pub fn protection(&self) -> ProtectionKind {
        self.protection
    }

    /// Rebuilds the array with the given protection scheme: the check-bit
    /// sideband is (re-)encoded over the current contents and any taint
    /// from earlier injections is forgotten.
    pub fn set_protection(&mut self, kind: ProtectionKind) {
        self.protection = kind;
        self.tainted.clear();
        if kind == ProtectionKind::None {
            self.codes.clear();
            return;
        }
        let n_words = self.data.len().div_ceil(4);
        self.codes = vec![0; n_words];
        for ix in 0..n_words {
            self.codes[ix] = self.encode(self.word_at(ix));
        }
    }

    /// Word indices currently known to hold uncorrected corruption.
    pub fn tainted_words(&self) -> usize {
        self.tainted.len()
    }

    fn word_at(&self, ix: usize) -> u32 {
        let off = ix * 4;
        let mut v = 0u32;
        for i in (0..4.min(self.data.len() - off)).rev() {
            v = (v << 8) | self.data[off + i] as u32;
        }
        v
    }

    fn put_word(&mut self, ix: usize, w: u32) {
        let off = ix * 4;
        for i in 0..4.min(self.data.len() - off) {
            self.data[off + i] = (w >> (8 * i)) as u8;
        }
    }

    fn encode(&self, word: u32) -> u8 {
        match self.protection {
            ProtectionKind::None => 0,
            ProtectionKind::Parity => parity_encode(word),
            ProtectionKind::Secded => secded_encode(word),
        }
    }

    /// Flips one data bit *behind the protection scheme's back*: the stored
    /// check bits are left untouched, exactly like a particle strike in the
    /// SRAM array. `word_sel` is reduced modulo the word count.
    pub fn inject_bit_flip(&mut self, word_sel: u64, bit: u8) {
        let n_words = (self.data.len() / 4).max(1);
        let ix = (word_sel % n_words as u64) as usize;
        let w = self.word_at(ix);
        self.put_word(ix, w ^ 1u32 << (bit % 32));
        self.tainted.insert(ix);
        self.faults.injected += 1;
    }

    /// Installs a stuck-at fault: the bit is forced to `value` now and
    /// after every subsequent write to the word. Check bits are not
    /// updated, so protected arrays can observe the fault.
    pub fn inject_stuck_at(&mut self, word_sel: u64, bit: u8, value: bool) {
        let n_words = (self.data.len() / 4).max(1);
        let ix = (word_sel % n_words as u64) as usize;
        let bit = bit % 32;
        self.stuck.push((ix, bit, value));
        self.faults.injected += 1;
        self.force_stuck_word(ix);
    }

    /// Re-applies every stuck bit registered for word `ix`; taints the word
    /// if forcing actually changed it.
    fn force_stuck_word(&mut self, ix: usize) {
        let mut w = self.word_at(ix);
        let mut changed = false;
        for &(six, bit, value) in &self.stuck {
            if six != ix {
                continue;
            }
            let forced = if value { w | 1 << bit } else { w & !(1 << bit) };
            changed |= forced != w;
            w = forced;
        }
        if changed {
            self.put_word(ix, w);
            self.tainted.insert(ix);
        }
    }

    /// Verifies the protected words covering `[off, off+len)` before a
    /// read, correcting / detecting / accounting as the scheme allows.
    #[inline]
    fn verify(&mut self, off: usize, len: usize) -> Result<(), MemError> {
        if self.protection == ProtectionKind::None && self.tainted.is_empty() {
            return Ok(());
        }
        for ix in off / 4..=(off + len - 1) / 4 {
            let addr = self.base + (ix * 4) as u32;
            match self.protection {
                ProtectionKind::None => {
                    // Raw SRAM: corruption sails straight into the core.
                    if self.tainted.contains(&ix) {
                        self.faults.escaped += 1;
                    }
                }
                ProtectionKind::Parity => {
                    if !parity_check(self.word_at(ix), self.codes[ix]) {
                        self.faults.detected += 1;
                        return Err(MemError::ParityUpset {
                            mem: self.name,
                            addr,
                        });
                    }
                    // Parity passed: an even number of flips (or none).
                    if self.tainted.remove(&ix) {
                        self.faults.escaped += 1;
                    }
                }
                ProtectionKind::Secded => match secded_decode(self.word_at(ix), self.codes[ix]) {
                    SecdedResult::Clean => {
                        self.tainted.remove(&ix);
                    }
                    SecdedResult::Corrected(fixed) => {
                        self.put_word(ix, fixed);
                        self.codes[ix] = self.encode(fixed);
                        self.tainted.remove(&ix);
                        self.faults.corrected += 1;
                    }
                    SecdedResult::DoubleError => {
                        self.faults.detected += 1;
                        return Err(MemError::DoubleUpset {
                            mem: self.name,
                            addr,
                        });
                    }
                },
            }
        }
        Ok(())
    }

    /// Post-write bookkeeping for words covering `[off, off+len)`:
    /// re-forces stuck bits, re-encodes check bits over the new contents,
    /// and clears taint (a full overwrite replaces corrupt data; a partial
    /// write of a tainted word commits the corruption, which counts as an
    /// escape).
    #[inline]
    fn recode(&mut self, off: usize, len: usize) {
        if self.protection == ProtectionKind::None
            && self.tainted.is_empty()
            && self.stuck.is_empty()
        {
            return;
        }
        for ix in off / 4..=(off + len - 1) / 4 {
            if self.tainted.remove(&ix) && (off > ix * 4 || off + len < ix * 4 + 4) {
                self.faults.escaped += 1;
            }
            // Encode over the data as written — the ECC encoder sits in
            // front of the array — then re-force stuck array bits, so a
            // hard fault stays visible to the checker on the next read.
            if self.protection != ProtectionKind::None {
                self.codes[ix] = self.encode(self.word_at(ix));
            }
            if !self.stuck.is_empty() {
                self.force_stuck_word(ix);
            }
        }
    }

    #[inline]
    fn check(&self, addr: u32, width: Width) -> Result<usize, MemError> {
        let len = width.bytes();
        if !(addr as usize).is_multiple_of(len) {
            return Err(MemError::Misaligned { addr, align: len });
        }
        if !self.contains(addr, len) {
            return Err(MemError::OutOfBounds {
                addr,
                len,
                base: self.base,
                size: self.data.len(),
            });
        }
        Ok((addr - self.base) as usize)
    }

    #[inline]
    fn charge_port(&mut self, port: AccessPort) -> Result<(), MemError> {
        match port {
            AccessPort::Core => {
                if self.core_accesses_this_cycle >= 1 {
                    return Err(MemError::PortConflict { port: self.name });
                }
                self.core_accesses_this_cycle += 1;
                self.core_accesses += 1;
            }
            AccessPort::Prefetcher => {
                if !self.dual_port {
                    return Err(MemError::PortConflict { port: self.name });
                }
                if self.pf_accesses_this_cycle >= 1 {
                    return Err(MemError::PortConflict { port: self.name });
                }
                self.pf_accesses_this_cycle += 1;
                self.pf_accesses += 1;
            }
        }
        Ok(())
    }

    /// Reads an access of the given width through a port, enforcing the
    /// one-access-per-port-per-cycle budget.
    pub fn read(&mut self, port: AccessPort, addr: u32, width: Width) -> Result<u128, MemError> {
        self.charge_port(port)?;
        self.read_unmetered(addr, width)
    }

    /// Writes an access of the given width through a port.
    pub fn write(
        &mut self,
        port: AccessPort,
        addr: u32,
        width: Width,
        value: u128,
    ) -> Result<(), MemError> {
        self.charge_port(port)?;
        self.write_unmetered(addr, width, value)
    }

    /// Reads without charging a port budget. Used for debug inspection and
    /// for loading programs/data before simulation starts.
    pub fn read_unmetered(&mut self, addr: u32, width: Width) -> Result<u128, MemError> {
        let off = self.check(addr, width)?;
        let len = width.bytes();
        self.verify(off, len)?;
        let mut v: u128 = 0;
        for i in (0..len).rev() {
            v = (v << 8) | self.data[off + i] as u128;
        }
        self.bytes_moved += len as u64;
        Ok(v)
    }

    /// Writes without charging a port budget. Used to initialise memory
    /// contents before simulation starts.
    pub fn write_unmetered(
        &mut self,
        addr: u32,
        width: Width,
        value: u128,
    ) -> Result<(), MemError> {
        let off = self.check(addr, width)?;
        let len = width.bytes();
        let mut v = value;
        for i in 0..len {
            self.data[off + i] = (v & 0xff) as u8;
            v >>= 8;
        }
        self.recode(off, len);
        self.bytes_moved += len as u64;
        Ok(())
    }

    /// Writes up to four 32-bit lanes starting at a word-aligned address,
    /// charging one port access per 16-byte beat touched — this models the
    /// byte-enabled partial stores of a 128-bit store unit (used by the
    /// `ST_FLUSH` and copy instructions for result tails). Returns the
    /// number of beats (port accesses) consumed.
    pub fn write_lanes(
        &mut self,
        port: AccessPort,
        addr: u32,
        lanes: &[u32],
    ) -> Result<u32, MemError> {
        assert!(lanes.len() <= 4, "at most one 128-bit beat worth of lanes");
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        if lanes.is_empty() {
            return Ok(0);
        }
        let first_beat = addr / 16;
        let last_beat = (addr + 4 * lanes.len() as u32 - 4) / 16;
        let beats = last_beat - first_beat + 1;
        for _ in 0..beats {
            self.charge_port(port)?;
        }
        let len = 4 * lanes.len();
        if self.contains(addr, len) {
            // Whole span in bounds: write contiguously, recode once —
            // identical protection accounting to the per-lane path, one
            // taint/parity scan instead of one per lane.
            let off = (addr - self.base) as usize;
            for (i, v) in lanes.iter().enumerate() {
                let o = off + 4 * i;
                self.data[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.recode(off, len);
            self.bytes_moved += len as u64;
            return Ok(beats);
        }
        for (i, v) in lanes.iter().enumerate() {
            self.write_unmetered(addr + 4 * i as u32, Width::W32, *v as u128)?;
        }
        Ok(beats)
    }

    /// Reads up to four 32-bit lanes from a word-aligned address, charging
    /// one port access per beat touched (mirror of [`Self::write_lanes`]).
    pub fn read_lanes(
        &mut self,
        port: AccessPort,
        addr: u32,
        n: usize,
    ) -> Result<(Vec<u32>, u32), MemError> {
        assert!(n <= 4, "at most one 128-bit beat worth of lanes");
        let mut lanes = [0u32; 4];
        let beats = self.read_lanes_into(port, addr, &mut lanes[..n])?;
        Ok((lanes[..n].to_vec(), beats))
    }

    /// Like [`Self::read_lanes`], but reads into a caller-provided buffer
    /// (the lane count is `out.len()`) and returns only the beat count —
    /// the allocation-free form the per-cycle datapath uses.
    pub fn read_lanes_into(
        &mut self,
        port: AccessPort,
        addr: u32,
        out: &mut [u32],
    ) -> Result<u32, MemError> {
        let n = out.len();
        assert!(n <= 4, "at most one 128-bit beat worth of lanes");
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        if n == 0 {
            return Ok(0);
        }
        let first_beat = addr / 16;
        let last_beat = (addr + 4 * n as u32 - 4) / 16;
        let beats = last_beat - first_beat + 1;
        for _ in 0..beats {
            self.charge_port(port)?;
        }
        let len = 4 * n;
        if self.contains(addr, len) {
            // Whole span in bounds: verify once, read contiguously —
            // identical protection accounting to the per-lane path, one
            // bounds/taint scan instead of `n`.
            let off = (addr - self.base) as usize;
            self.verify(off, len)?;
            for (i, lane) in out.iter_mut().enumerate() {
                let o = off + 4 * i;
                *lane = u32::from_le_bytes(self.data[o..o + 4].try_into().unwrap());
            }
            self.bytes_moved += len as u64;
            return Ok(beats);
        }
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = self.read_unmetered(addr + 4 * i as u32, Width::W32)? as u32;
        }
        Ok(beats)
    }

    /// Copies a `u32` slice into memory starting at `addr` (setup helper).
    pub fn load_words(&mut self, addr: u32, words: &[u32]) -> Result<(), MemError> {
        for (i, w) in words.iter().enumerate() {
            self.write_unmetered(addr + 4 * i as u32, Width::W32, *w as u128)?;
        }
        Ok(())
    }

    /// Reads `n` consecutive `u32`s starting at `addr` (inspection helper).
    pub fn read_words(&mut self, addr: u32, n: usize) -> Result<Vec<u32>, MemError> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.read_unmetered(addr + 4 * i as u32, Width::W32)? as u32);
        }
        Ok(out)
    }

    /// Fills the whole memory with a byte value (test helper).
    pub fn fill(&mut self, byte: u8) {
        for b in &mut self.data {
            *b = byte;
        }
        if self.protection != ProtectionKind::None || !self.stuck.is_empty() {
            self.recode(0, self.data.len());
        }
        self.tainted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> LocalMemory {
        LocalMemory::new("dmem0", 0x6000_0000, 1024)
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = mem();
        m.write_unmetered(0x6000_0010, Width::W32, 0xdead_beef)
            .unwrap();
        assert_eq!(
            m.read_unmetered(0x6000_0010, Width::W32).unwrap(),
            0xdead_beef
        );
    }

    #[test]
    fn little_endian_layout() {
        let mut m = mem();
        m.write_unmetered(0x6000_0000, Width::W32, 0x0403_0201)
            .unwrap();
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W8).unwrap(), 0x01);
        assert_eq!(m.read_unmetered(0x6000_0001, Width::W8).unwrap(), 0x02);
        assert_eq!(m.read_unmetered(0x6000_0003, Width::W8).unwrap(), 0x04);
    }

    #[test]
    fn w128_roundtrip() {
        let mut m = mem();
        let v: u128 = 0x1111_2222_3333_4444_5555_6666_7777_8888;
        m.write_unmetered(0x6000_0020, Width::W128, v).unwrap();
        assert_eq!(m.read_unmetered(0x6000_0020, Width::W128).unwrap(), v);
        // The four 32-bit lanes land in little-endian order.
        assert_eq!(
            m.read_unmetered(0x6000_0020, Width::W32).unwrap(),
            0x7777_8888
        );
        assert_eq!(
            m.read_unmetered(0x6000_002c, Width::W32).unwrap(),
            0x1111_2222
        );
    }

    #[test]
    fn misaligned_access_rejected() {
        let mut m = mem();
        let e = m.read_unmetered(0x6000_0002, Width::W32).unwrap_err();
        assert!(matches!(e, MemError::Misaligned { align: 4, .. }));
        let e = m.read_unmetered(0x6000_0008, Width::W128).unwrap_err();
        assert!(matches!(e, MemError::Misaligned { align: 16, .. }));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = mem();
        let e = m.read_unmetered(0x6000_0400, Width::W32).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { .. }));
        // Access straddling the end is also rejected.
        let e = m
            .read_unmetered(0x6000_03f0 + 0x10, Width::W128)
            .unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { .. }));
    }

    #[test]
    fn single_port_budget_enforced() {
        let mut m = mem();
        m.begin_cycle();
        m.read(AccessPort::Core, 0x6000_0000, Width::W32).unwrap();
        let e = m
            .read(AccessPort::Core, 0x6000_0004, Width::W32)
            .unwrap_err();
        assert!(matches!(e, MemError::PortConflict { .. }));
        m.begin_cycle();
        m.read(AccessPort::Core, 0x6000_0004, Width::W32).unwrap();
    }

    #[test]
    fn prefetcher_port_requires_dual_port() {
        let mut m = mem();
        m.begin_cycle();
        let e = m
            .read(AccessPort::Prefetcher, 0x6000_0000, Width::W32)
            .unwrap_err();
        assert!(matches!(e, MemError::PortConflict { .. }));

        let mut d = LocalMemory::new_dual_port("dmem0", 0x6000_0000, 1024);
        d.begin_cycle();
        d.read(AccessPort::Core, 0x6000_0000, Width::W32).unwrap();
        // Both ports may be used in the same cycle — that is the point of
        // the dual-port memories in the paper.
        d.read(AccessPort::Prefetcher, 0x6000_0010, Width::W128)
            .unwrap();
    }

    #[test]
    fn write_lanes_charges_per_beat() {
        let mut m = mem();
        m.begin_cycle();
        // 3 lanes fully inside one beat: one access.
        let beats = m
            .write_lanes(AccessPort::Core, 0x6000_0000, &[1, 2, 3])
            .unwrap();
        assert_eq!(beats, 1);
        assert_eq!(m.read_words(0x6000_0000, 3).unwrap(), vec![1, 2, 3]);
        // Same cycle, second access: port conflict.
        let e = m
            .write_lanes(AccessPort::Core, 0x6000_0040, &[9])
            .unwrap_err();
        assert!(matches!(e, MemError::PortConflict { .. }));
    }

    #[test]
    fn write_lanes_crossing_beats_costs_two() {
        let mut m = mem();
        m.begin_cycle();
        // 4 lanes starting at offset 8 straddle two 16-byte beats, but the
        // port only allows one access per cycle — structural conflict.
        let e = m
            .write_lanes(AccessPort::Core, 0x6000_0008, &[1, 2, 3, 4])
            .unwrap_err();
        assert!(matches!(e, MemError::PortConflict { .. }));

        let mut d = LocalMemory::new_dual_port("x", 0x6000_0000, 1024);
        d.begin_cycle();
        // Within one beat it is fine even at offset 8 (2 lanes).
        let beats = d
            .write_lanes(AccessPort::Core, 0x6000_0008, &[7, 8])
            .unwrap();
        assert_eq!(beats, 1);
    }

    #[test]
    fn read_lanes_roundtrip() {
        let mut m = mem();
        m.load_words(0x6000_0020, &[5, 6, 7, 8]).unwrap();
        m.begin_cycle();
        let (v, beats) = m.read_lanes(AccessPort::Core, 0x6000_0020, 4).unwrap();
        assert_eq!(v, vec![5, 6, 7, 8]);
        assert_eq!(beats, 1);
        m.begin_cycle();
        let (v, _) = m.read_lanes(AccessPort::Core, 0x6000_0028, 2).unwrap();
        assert_eq!(v, vec![7, 8]);
    }

    #[test]
    fn lane_access_rejects_unaligned_and_empty() {
        let mut m = mem();
        m.begin_cycle();
        assert!(matches!(
            m.write_lanes(AccessPort::Core, 0x6000_0002, &[1]),
            Err(MemError::Misaligned { .. })
        ));
        assert_eq!(
            m.write_lanes(AccessPort::Core, 0x6000_0000, &[]).unwrap(),
            0
        );
    }

    #[test]
    fn load_and_read_words_roundtrip() {
        let mut m = mem();
        let ws = [1u32, 2, 3, 0xffff_ffff];
        m.load_words(0x6000_0040, &ws).unwrap();
        assert_eq!(m.read_words(0x6000_0040, 4).unwrap(), ws);
    }

    #[test]
    fn secded_corrects_injected_flip_in_place() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Secded);
        m.load_words(0x6000_0000, &[0xcafe_babe]).unwrap();
        m.inject_bit_flip(0, 13);
        assert_eq!(m.tainted_words(), 1);
        // The read returns the *corrected* value and scrubs the array.
        assert_eq!(
            m.read_unmetered(0x6000_0000, Width::W32).unwrap(),
            0xcafe_babe
        );
        assert_eq!(m.faults.corrected, 1);
        assert_eq!(m.tainted_words(), 0);
        // Second read is clean without further correction.
        assert_eq!(
            m.read_unmetered(0x6000_0000, Width::W32).unwrap(),
            0xcafe_babe
        );
        assert_eq!(m.faults.corrected, 1);
    }

    #[test]
    fn secded_detects_double_flip() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Secded);
        m.load_words(0x6000_0000, &[42]).unwrap();
        m.inject_bit_flip(0, 3);
        m.inject_bit_flip(0, 21);
        let e = m.read_unmetered(0x6000_0000, Width::W32).unwrap_err();
        assert!(matches!(e, MemError::DoubleUpset { mem: "dmem0", .. }));
        assert_eq!(m.faults.detected, 1);
    }

    #[test]
    fn parity_detects_single_flip() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Parity);
        m.load_words(0x6000_0010, &[7]).unwrap();
        m.inject_bit_flip(4, 0);
        let e = m.read_unmetered(0x6000_0010, Width::W32).unwrap_err();
        assert!(matches!(
            e,
            MemError::ParityUpset {
                mem: "dmem0",
                addr: 0x6000_0010
            }
        ));
        assert_eq!(m.faults.detected, 1);
    }

    #[test]
    fn parity_misses_even_flips_but_counts_escape() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Parity);
        m.load_words(0x6000_0000, &[0]).unwrap();
        m.inject_bit_flip(0, 1);
        m.inject_bit_flip(0, 2);
        // Two flips cancel in the parity sum: the read succeeds with the
        // corrupted word, and the escape counter says so.
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W32).unwrap(), 0b110);
        assert_eq!(m.faults.escaped, 1);
        assert_eq!(m.faults.detected, 0);
    }

    #[test]
    fn unprotected_reads_of_corrupt_words_escape() {
        let mut m = mem();
        m.load_words(0x6000_0000, &[100]).unwrap();
        m.inject_bit_flip(0, 0);
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W32).unwrap(), 101);
        assert_eq!(m.faults.escaped, 1);
        assert_eq!(m.faults.injected, 1);
    }

    #[test]
    fn overwrite_clears_taint() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Parity);
        m.inject_bit_flip(0, 5);
        m.write_unmetered(0x6000_0000, Width::W32, 99).unwrap();
        assert_eq!(m.tainted_words(), 0);
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W32).unwrap(), 99);
        assert_eq!(m.faults.detected, 0);
        assert_eq!(m.faults.escaped, 0);
    }

    #[test]
    fn wide_reads_verify_every_covered_word() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Secded);
        m.load_words(0x6000_0000, &[1, 2, 3, 4]).unwrap();
        // Corrupt the third word; a 128-bit read must still see 1,2,3,4.
        m.inject_bit_flip(2, 9);
        let v = m.read_unmetered(0x6000_0000, Width::W128).unwrap();
        assert_eq!(v & 0xffff_ffff, 1);
        assert_eq!((v >> 64) & 0xffff_ffff, 3);
        assert_eq!(m.faults.corrected, 1);
    }

    #[test]
    fn stuck_at_survives_rewrites() {
        let mut m = mem();
        m.set_protection(ProtectionKind::Secded);
        m.inject_stuck_at(0, 4, true);
        m.write_unmetered(0x6000_0000, Width::W32, 0).unwrap();
        // The array bit is forced high behind the encoder, so SECDED sees
        // a single-bit error and corrects it on every read.
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W32).unwrap(), 0);
        m.write_unmetered(0x6000_0000, Width::W32, 0x0f).unwrap();
        assert_eq!(m.read_unmetered(0x6000_0000, Width::W32).unwrap(), 0x0f);
        assert!(m.faults.corrected >= 2);
    }

    #[test]
    fn set_protection_encodes_existing_contents() {
        let mut m = mem();
        m.load_words(0x6000_0000, &[0x1234_5678]).unwrap();
        m.set_protection(ProtectionKind::Secded);
        assert_eq!(
            m.read_unmetered(0x6000_0000, Width::W32).unwrap(),
            0x1234_5678
        );
        assert!(m.faults.is_zero());
    }
}
