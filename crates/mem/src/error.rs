//! Error type for memory accesses.

use core::fmt;

/// An error raised by a memory component.
///
/// In real hardware most of these conditions would be bus errors or silent
/// corruption; the simulator surfaces them as typed errors so that kernel and
/// extension bugs are caught immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The address (plus access width) falls outside the memory region.
    OutOfBounds {
        /// Address of the offending access.
        addr: u32,
        /// Access size in bytes.
        len: usize,
        /// Base address of the region that was addressed.
        base: u32,
        /// Size of the region in bytes.
        size: usize,
    },
    /// The access is not naturally aligned for its width.
    Misaligned {
        /// Address of the offending access.
        addr: u32,
        /// Required alignment in bytes.
        align: usize,
    },
    /// No memory region is mapped at this address.
    Unmapped {
        /// Address of the offending access.
        addr: u32,
    },
    /// A port exceeded its one-access-per-cycle budget.
    ///
    /// Local memories are single-ported per connected master (the dual-port
    /// variants expose one port to the core and one to the prefetcher); two
    /// accesses through the same port in one cycle is a structural hazard.
    PortConflict {
        /// Human-readable port name, e.g. `"dmem0:core"`.
        port: &'static str,
    },
    /// The access is wider than the connected bus allows.
    WidthUnsupported {
        /// Requested access size in bytes.
        requested: usize,
        /// Bus width in bytes.
        bus: usize,
    },
    /// A DMA descriptor is malformed (zero length, overlapping, unaligned).
    BadDescriptor {
        /// Explanation of the problem.
        reason: &'static str,
    },
    /// A parity-protected memory read a word whose stored parity bit
    /// disagrees with its contents: an upset was *detected* (parity cannot
    /// correct). Raised by [`crate::LocalMemory`] under
    /// [`ProtectionKind::Parity`](dbx_faults::ProtectionKind::Parity).
    ParityUpset {
        /// Name of the memory that detected the upset.
        mem: &'static str,
        /// Word-aligned address of the corrupted word.
        addr: u32,
    },
    /// A SECDED-protected memory read a word with an uncorrectable
    /// (double-bit) upset.
    DoubleUpset {
        /// Name of the memory that detected the upset.
        mem: &'static str,
        /// Word-aligned address of the corrupted word.
        addr: u32,
    },
    /// The DMAC dropped a burst mid-transfer: the transfer completed with
    /// missing data and must be considered failed.
    TransferFault {
        /// Source address of the failed transfer.
        src: u32,
        /// Destination address of the failed transfer.
        dst: u32,
    },
}

impl MemError {
    /// True for the variants that model *hardware faults* (detected upsets
    /// and failed transfers) rather than program bugs; the CPU converts
    /// these into a precise machine-fault trap.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            MemError::ParityUpset { .. }
                | MemError::DoubleUpset { .. }
                | MemError::TransferFault { .. }
        )
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds {
                addr,
                len,
                base,
                size,
            } => write!(
                f,
                "access of {len} bytes at {addr:#010x} outside region [{base:#010x}, {:#010x})",
                *base as u64 + *size as u64
            ),
            MemError::Misaligned { addr, align } => {
                write!(
                    f,
                    "misaligned access at {addr:#010x} (requires {align}-byte alignment)"
                )
            }
            MemError::Unmapped { addr } => write!(f, "no memory mapped at {addr:#010x}"),
            MemError::PortConflict { port } => {
                write!(
                    f,
                    "structural hazard: two accesses on port {port} in one cycle"
                )
            }
            MemError::WidthUnsupported { requested, bus } => {
                write!(f, "{requested}-byte access on a {bus}-byte bus")
            }
            MemError::BadDescriptor { reason } => write!(f, "bad DMA descriptor: {reason}"),
            MemError::ParityUpset { mem, addr } => {
                write!(f, "parity error in {mem} at {addr:#010x} (detected upset)")
            }
            MemError::DoubleUpset { mem, addr } => {
                write!(f, "uncorrectable double-bit upset in {mem} at {addr:#010x}")
            }
            MemError::TransferFault { src, dst } => {
                write!(f, "DMA transfer {src:#010x} -> {dst:#010x} dropped a burst")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds_mentions_region() {
        let e = MemError::OutOfBounds {
            addr: 0x100,
            len: 4,
            base: 0,
            size: 16,
        };
        let s = e.to_string();
        assert!(s.contains("0x00000100"), "{s}");
        assert!(s.contains("outside region"), "{s}");
    }

    #[test]
    fn display_port_conflict_names_port() {
        let e = MemError::PortConflict { port: "dmem0:core" };
        assert!(e.to_string().contains("dmem0:core"));
    }
}
