//! Direct-mapped data-cache model.
//!
//! The paper's baseline `108Mini` configuration (a Tensilica Diamond
//! controller) accesses memory through caches (Figure 1), while the DBA
//! variants replace the cache with a local store. The observed effect in the
//! paper (Section 5.2) is that attaching a local store "almost doubles" the
//! throughput of the scalar algorithms because "access to memory is less
//! expensive". This module supplies that cost difference: a write-allocate,
//! write-back, direct-mapped cache whose hit latency is `hit_cycles` and
//! whose miss costs `miss_penalty` additional cycles.
//!
//! The model is a *timing* cache: data always comes from the backing
//! [`SystemMemory`], the cache only decides how many cycles the access costs
//! and tracks dirty lines for write-back traffic accounting.

use crate::sysmem::SystemMemory;
use crate::{MemError, Width};

/// Geometry and timing of a [`DataCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: usize,
    /// Line size in bytes. Must be a power of two and divide the size.
    pub line_bytes: usize,
    /// Cycles for a hit (the load-to-use cost charged by the pipeline).
    pub hit_cycles: u32,
    /// Additional cycles charged on a miss (line fill from system memory).
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// The 8 KiB, 32-byte-line configuration used for the 108Mini baseline.
    pub fn mini108_default() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 30,
        }
    }

    fn validate(&self) {
        assert!(
            self.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.line_bytes >= 4 && self.line_bytes <= self.size_bytes);
    }
}

/// Hit/miss statistics of a cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
}

/// A direct-mapped, write-allocate, write-back timing cache in front of
/// [`SystemMemory`].
#[derive(Debug, Clone)]
pub struct DataCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    /// Hit/miss statistics.
    pub stats: CacheStats,
}

impl DataCache {
    /// Creates a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let n = cfg.size_bytes / cfg.line_bytes;
        DataCache {
            cfg,
            lines: vec![Line::default(); n],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr as usize / self.cfg.line_bytes;
        let idx = line % self.lines.len();
        let tag = (line / self.lines.len()) as u32;
        (idx, tag)
    }

    /// Models the timing of an access, returning the number of cycles it
    /// costs. `is_write` marks the line dirty on a write.
    fn touch(&mut self, addr: u32, is_write: bool) -> u32 {
        let (idx, tag) = self.index_and_tag(addr);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            self.stats.hits += 1;
            if is_write {
                line.dirty = true;
            }
            self.cfg.hit_cycles
        } else {
            self.stats.misses += 1;
            let mut cost = self.cfg.hit_cycles + self.cfg.miss_penalty;
            if line.valid && line.dirty {
                self.stats.writebacks += 1;
                // Write-back of the evicted dirty line: half a fill.
                cost += self.cfg.miss_penalty / 2;
            }
            line.valid = true;
            line.dirty = is_write;
            line.tag = tag;
            cost
        }
    }

    /// Reads through the cache. Returns `(value, cycles)`.
    pub fn read(
        &mut self,
        mem: &mut SystemMemory,
        addr: u32,
        width: Width,
    ) -> Result<(u128, u32), MemError> {
        let cycles = self.touch(addr, false);
        let v = mem.read(addr, width)?;
        Ok((v, cycles))
    }

    /// Writes through the cache (write-allocate). Returns the cycle cost.
    pub fn write(
        &mut self,
        mem: &mut SystemMemory,
        addr: u32,
        width: Width,
        value: u128,
    ) -> Result<u32, MemError> {
        let cycles = self.touch(addr, true);
        mem.write(addr, width, value)?;
        Ok(cycles)
    }

    /// Invalidates all lines (and forgets dirtiness — timing model only).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DataCache, SystemMemory) {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 10,
        };
        (DataCache::new(cfg), SystemMemory::new())
    }

    #[test]
    fn first_touch_misses_then_hits_within_line() {
        let (mut c, mut m) = setup();
        m.write(0x1000, Width::W32, 7).unwrap();
        let (v, cy) = c.read(&mut m, 0x1000, Width::W32).unwrap();
        assert_eq!(v, 7);
        assert_eq!(cy, 11); // 1 hit cycle + 10 miss penalty
        let (_, cy) = c.read(&mut m, 0x1004, Width::W32).unwrap();
        assert_eq!(cy, 1); // same line: hit
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let (mut c, mut m) = setup();
        let mut total = 0;
        for i in 0..64u32 {
            let (_, cy) = c.read(&mut m, 0x2000 + 4 * i, Width::W32).unwrap();
            total += cy;
        }
        // 64 word reads over 32-byte lines: 8 misses, 56 hits.
        assert_eq!(c.stats.misses, 8);
        assert_eq!(c.stats.hits, 56);
        assert_eq!(total, 8 * 11 + 56);
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        let (mut c, mut m) = setup();
        // 256-byte cache: addresses 256 apart map to the same index.
        c.read(&mut m, 0x0, Width::W32).unwrap();
        c.read(&mut m, 0x100, Width::W32).unwrap();
        c.read(&mut m, 0x0, Width::W32).unwrap();
        assert_eq!(c.stats.misses, 3);
    }

    #[test]
    fn dirty_eviction_costs_writeback() {
        let (mut c, mut m) = setup();
        let cy = c.write(&mut m, 0x0, Width::W32, 1).unwrap();
        assert_eq!(cy, 11);
        // Evict the dirty line with a conflicting read: extra writeback cost.
        let (_, cy) = c.read(&mut m, 0x100, Width::W32).unwrap();
        assert_eq!(cy, 11 + 5);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn miss_rate_reporting() {
        let (mut c, mut m) = setup();
        assert_eq!(c.stats.miss_rate(), 0.0);
        c.read(&mut m, 0x0, Width::W32).unwrap();
        c.read(&mut m, 0x4, Width::W32).unwrap();
        assert!((c.stats.miss_rate() - 0.5).abs() < 1e-12);
    }
}
