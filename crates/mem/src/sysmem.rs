//! Off-chip system memory behind the interconnection network.
//!
//! The 108Mini baseline accesses its working set through a data cache backed
//! by this memory; the DBA configurations reach it only through the data
//! prefetcher's burst transfers. Timing is modelled as a fixed access
//! latency plus a per-beat cost for burst transfers (see
//! [`crate::prefetch::BurstBus`]).

use crate::error::MemError;
use crate::Width;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse flat memory. Pages are allocated on first touch so that multi-
/// megabyte address spaces cost nothing until used.
#[derive(Debug, Default, Clone)]
pub struct SystemMemory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    /// Lifetime statistics: bytes read.
    pub bytes_read: u64,
    /// Lifetime statistics: bytes written.
    pub bytes_written: u64,
}

impl SystemMemory {
    /// Creates an empty system memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u32) -> u8 {
        self.bytes_read += 1;
        self.page(addr)[(addr as usize) % PAGE_SIZE]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.bytes_written += 1;
        self.page(addr)[(addr as usize) % PAGE_SIZE] = v;
    }

    /// Reads a naturally-aligned access of the given width.
    pub fn read(&mut self, addr: u32, width: Width) -> Result<u128, MemError> {
        let len = width.bytes();
        if !(addr as usize).is_multiple_of(len) {
            return Err(MemError::Misaligned { addr, align: len });
        }
        let mut v: u128 = 0;
        for i in (0..len).rev() {
            v = (v << 8) | self.read_u8(addr + i as u32) as u128;
        }
        Ok(v)
    }

    /// Writes a naturally-aligned access of the given width.
    pub fn write(&mut self, addr: u32, width: Width, value: u128) -> Result<(), MemError> {
        let len = width.bytes();
        if !(addr as usize).is_multiple_of(len) {
            return Err(MemError::Misaligned { addr, align: len });
        }
        let mut v = value;
        for i in 0..len {
            self.write_u8(addr + i as u32, (v & 0xff) as u8);
            v >>= 8;
        }
        Ok(())
    }

    /// Copies a `u32` slice into memory starting at `addr`.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) -> Result<(), MemError> {
        for (i, w) in words.iter().enumerate() {
            self.write(addr + 4 * i as u32, Width::W32, *w as u128)?;
        }
        Ok(())
    }

    /// Reads `n` consecutive `u32`s starting at `addr`.
    pub fn read_words(&mut self, addr: u32, n: usize) -> Result<Vec<u32>, MemError> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.read(addr + 4 * i as u32, Width::W32)? as u32);
        }
        Ok(out)
    }

    /// Number of pages currently allocated (test/inspection helper).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_allocation_on_touch() {
        let mut m = SystemMemory::new();
        assert_eq!(m.resident_pages(), 0);
        m.write(0x8000_0000, Width::W32, 42).unwrap();
        m.write(0x9000_0000, Width::W32, 43).unwrap();
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(0x8000_0000, Width::W32).unwrap(), 42);
        assert_eq!(m.read(0x9000_0000, Width::W32).unwrap(), 43);
    }

    #[test]
    fn cross_page_wide_access() {
        let mut m = SystemMemory::new();
        let addr = 0x8000_1000 - 16; // last 16 bytes of a page
        let v: u128 = 0xaaaa_bbbb_cccc_dddd_eeee_ffff_0000_1111;
        m.write(addr, Width::W128, v).unwrap();
        assert_eq!(m.read(addr, Width::W128).unwrap(), v);
    }

    #[test]
    fn misaligned_rejected() {
        let mut m = SystemMemory::new();
        assert!(matches!(
            m.read(3, Width::W32),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn words_roundtrip() {
        let mut m = SystemMemory::new();
        let ws: Vec<u32> = (0..100).map(|i| i * 7).collect();
        m.load_words(0x8000_0000, &ws).unwrap();
        assert_eq!(m.read_words(0x8000_0000, 100).unwrap(), ws);
    }
}
