//! Memory subsystem for the dbasip processor simulator.
//!
//! This crate models every storage component of the paper's processor
//! (Figure 1 and Figure 6 of Arnold et al., SIGMOD 2014):
//!
//! * [`LocalMemory`] — single-cycle scratchpad ("local store") memories for
//!   instructions and data. The DBA processor variants operate *only* on
//!   local memories; there are no cache misses on that path.
//! * [`SystemMemory`] — large off-chip memory behind the interconnect, used
//!   by the baseline `108Mini` configuration and by the data prefetcher.
//! * [`DataCache`] — a direct-mapped cache model placed in front of system
//!   memory for cache-based configurations (the `108Mini` baseline).
//! * [`prefetch`] — the data prefetcher: a DMA controller plus programmable
//!   finite state machine that moves bursts between system memory and the
//!   second port of dual-port local memories, concurrently with execution.
//!
//! All memories are byte-addressed little-endian and enforce the access
//! widths and alignments of the hardware they model (32/64/128-bit).

pub mod cache;
pub mod error;
pub mod local;
pub mod prefetch;
pub mod sysmem;

pub use cache::{CacheConfig, CacheStats, DataCache};
pub use error::MemError;
pub use local::{AccessPort, LocalMemory};
pub use prefetch::{BurstBus, Dmac, DmacProgram, DmacState, TransferDescriptor};
pub use sysmem::SystemMemory;
// Fault-model vocabulary, re-exported so memory users need not depend on
// `dbx-faults` directly.
pub use dbx_faults::{FaultCounters, ProtectionKind};

/// Width of one memory access in bits. The paper's DBA configurations use a
/// 128-bit data bus; the 108Mini baseline uses 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit byte access.
    W8,
    /// 16-bit halfword access.
    W16,
    /// 32-bit word access.
    W32,
    /// 64-bit doubleword access.
    W64,
    /// 128-bit quadword access (one full DBA bus beat, four set elements).
    W128,
}

impl Width {
    /// Size of the access in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
            Width::W128 => 16,
        }
    }

    /// Size of the access in bits.
    #[inline]
    pub fn bits(self) -> usize {
        self.bytes() * 8
    }

    /// The widest access allowed on a bus of `bits` width.
    pub fn from_bus_bits(bits: usize) -> Width {
        match bits {
            0..=8 => Width::W8,
            9..=16 => Width::W16,
            17..=32 => Width::W32,
            33..=64 => Width::W64,
            _ => Width::W128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes_and_bits_are_consistent() {
        for w in [Width::W8, Width::W16, Width::W32, Width::W64, Width::W128] {
            assert_eq!(w.bits(), w.bytes() * 8);
        }
    }

    #[test]
    fn width_from_bus_bits_picks_widest_fitting() {
        assert_eq!(Width::from_bus_bits(32), Width::W32);
        assert_eq!(Width::from_bus_bits(64), Width::W64);
        assert_eq!(Width::from_bus_bits(128), Width::W128);
        assert_eq!(Width::from_bus_bits(8), Width::W8);
    }
}
