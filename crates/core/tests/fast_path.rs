//! Differential equivalence suite for the fast-path execution engine.
//!
//! The simulator's fast path (pre-decoded basic blocks + specialized step
//! loop) must be bit-identical to the precise per-step loop: same results,
//! same simulated cycles, same event counters, same fault counters. These
//! tests run every kernel twice — once on the default engine selection
//! (fast when eligible) and once with [`RunOptions::force_precise`] — and
//! compare the complete [`dbx_cpu::RunStats`] for equality, across every
//! processor model, all three set operations plus merge-sort, and three
//! input seeds.
//!
//! Runs that are *ineligible* for the fast path (observer attached, armed
//! fault plan, protection enabled) are covered too: they must agree with
//! the eligible fast run, proving the automatic fallback changes nothing
//! but the engine.

use dbx_core::runner::{build_processor, run_set_op_with, run_sort_with, KernelRun, RunOptions};
use dbx_core::{ProcModel, SetOpKind};
use dbx_cpu::ProfileMode;
use dbx_faults::{FaultPlan, FaultTarget};
use dbx_observe::Observer;

const SEEDS: [u64; 3] = [11, 1337, 90210];

/// Deterministic xorshift — the suite must not depend on ambient RNG state.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A strictly increasing set of roughly `len` elements.
fn sorted_set(seed: u64, salt: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    let mut v = Vec::with_capacity(len);
    let mut cur = 0u32;
    for _ in 0..len {
        cur = cur.wrapping_add(1 + (next(&mut state) % 7) as u32);
        v.push(cur);
    }
    v
}

fn unsorted_data(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1;
    (0..len)
        .map(|_| (next(&mut state) % 100_000) as u32)
        .collect()
}

fn assert_identical(fast: &KernelRun, precise: &KernelRun, what: &str) {
    assert_eq!(fast.result, precise.result, "{what}: result diverged");
    assert_eq!(fast.cycles, precise.cycles, "{what}: cycle count diverged");
    assert_eq!(fast.stats, precise.stats, "{what}: RunStats diverged");
    assert_eq!(
        fast.faults, precise.faults,
        "{what}: fault counters diverged"
    );
    assert_eq!(fast.retries, precise.retries, "{what}: retries diverged");
}

#[test]
fn set_ops_fast_and_precise_are_bit_identical() {
    let kinds = [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ];
    for model in ProcModel::all() {
        for kind in kinds {
            for seed in SEEDS {
                let a = sorted_set(seed, 1, 400);
                let b = sorted_set(seed, 2, 350);
                let fast = run_set_op_with(model, kind, &a, &b, &RunOptions::default()).unwrap();
                let precise = run_set_op_with(
                    model,
                    kind,
                    &a,
                    &b,
                    &RunOptions {
                        force_precise: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_identical(&fast, &precise, &format!("{model:?} {kind:?} seed {seed}"));
            }
        }
    }
}

#[test]
fn sort_fast_and_precise_are_bit_identical() {
    for model in ProcModel::all() {
        for seed in SEEDS {
            let data = unsorted_data(seed, 256);
            let fast = run_sort_with(model, &data, &RunOptions::default()).unwrap();
            let precise = run_sort_with(
                model,
                &data,
                &RunOptions {
                    force_precise: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_identical(&fast, &precise, &format!("{model:?} sort seed {seed}"));
        }
    }
}

/// An attached observer enables profiling, which makes the run ineligible
/// for the fast path — the automatic precise fallback must agree with the
/// unobserved fast run on everything the observer is allowed to see.
#[test]
fn observer_fallback_agrees_with_fast_run() {
    let model = ProcModel::Dba2LsuEis { partial: true };
    let a = sorted_set(1337, 1, 400);
    let b = sorted_set(1337, 2, 350);
    let fast =
        run_set_op_with(model, SetOpKind::Intersect, &a, &b, &RunOptions::default()).unwrap();
    let (observer, _sink) = Observer::memory();
    let observed = run_set_op_with(
        model,
        SetOpKind::Intersect,
        &a,
        &b,
        &RunOptions {
            observer,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fast.result, observed.result);
    assert_eq!(
        fast.cycles, observed.cycles,
        "observer must not cost cycles"
    );
    assert_eq!(fast.stats, observed.stats);
    assert!(
        observed.profile.is_some(),
        "observed run profiles (and therefore ran the precise loop)"
    );
}

/// Sampled profiling is the one profiling mode that must NOT demote the
/// run off the fast path: the run stays bit-identical to the unprofiled
/// fast run, eligibility holds by construction, and the sampled
/// profile's attributed cycle total lands within one period of the
/// precise profiler's on the same inputs (the mode's documented error
/// bound).
#[test]
fn sampled_profiling_keeps_the_fast_path_within_its_error_bound() {
    let model = ProcModel::Dba2Lsu;
    let a = sorted_set(90210, 1, 400);
    let b = sorted_set(90210, 2, 350);
    let period = 64u64;

    // Eligibility is decided by the same predicate the engine consults.
    let mut probe = build_processor(model).unwrap();
    probe.set_profile_mode(ProfileMode::Sampled { period });
    assert!(
        probe.fast_path_eligible(),
        "Sampled profiling must leave the processor fast-path eligible"
    );
    probe.set_profile_mode(ProfileMode::Precise);
    assert!(
        !probe.fast_path_eligible(),
        "Precise profiling forces the per-step loop"
    );

    let fast =
        run_set_op_with(model, SetOpKind::Intersect, &a, &b, &RunOptions::default()).unwrap();
    let sampled = run_set_op_with(
        model,
        SetOpKind::Intersect,
        &a,
        &b,
        &RunOptions {
            profile: ProfileMode::Sampled { period },
            ..Default::default()
        },
    )
    .unwrap();
    assert_identical(&fast, &sampled, "sampled profiling");

    let sp = sampled.profile.expect("sampled run carries a profile");
    let precise = run_set_op_with(
        model,
        SetOpKind::Intersect,
        &a,
        &b,
        &RunOptions {
            profile: ProfileMode::Precise,
            ..Default::default()
        },
    )
    .unwrap();
    let pp = precise.profile.expect("precise run carries a profile");
    assert!(sp.total_cycles <= pp.total_cycles);
    assert!(
        pp.total_cycles - sp.total_cycles <= period,
        "sampled total {} must be within one period ({period}) of precise total {}",
        sp.total_cycles,
        pp.total_cycles
    );
    // The sampled weight map is sparse but non-empty, and every sampled
    // address is one the precise profiler also saw.
    let sampled_map = sp.weight_map();
    let precise_map = pp.weight_map();
    assert!(!sampled_map.is_empty());
    assert!(sampled_map.len() <= precise_map.len());
    for addr in sampled_map.keys() {
        assert!(
            precise_map.contains_key(addr),
            "sampled address {addr:#x} unknown to the precise profile"
        );
    }
}

/// An armed fault plan forces the precise loop even if none of its events
/// ever fire; such a run must be indistinguishable from the fast one.
#[test]
fn never_firing_fault_plan_agrees_with_fast_run() {
    let model = ProcModel::Dba1LsuEis { partial: false };
    let a = sorted_set(11, 1, 300);
    let b = sorted_set(11, 2, 300);
    let fast = run_set_op_with(model, SetOpKind::Union, &a, &b, &RunOptions::default()).unwrap();
    // Scheduled far beyond the kernel's runtime: armed, never fires.
    let plan = FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), u64::MAX, 0, 0);
    let forced = run_set_op_with(
        model,
        SetOpKind::Union,
        &a,
        &b,
        &RunOptions {
            fault_plan: Some(plan),
            ..Default::default()
        },
    )
    .unwrap();
    assert_identical(&fast, &forced, "armed-but-idle fault plan");
}
