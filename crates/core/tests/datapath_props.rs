//! Property tests of the SOP datapath invariants — the circuit-level
//! contracts every emission/retirement decision must satisfy for
//! arbitrary strictly-increasing windows.

use dbx_core::datapath::{merge8, sop_set, sort4, SetOpKind};
use proptest::collection::btree_set;
use proptest::prelude::*;

/// A window: 1..=4 strictly increasing values padded with the sentinel.
fn window_strategy() -> impl Strategy<Value = ([u32; 4], usize)> {
    btree_set(0u32..100, 1..=4usize).prop_map(|s| {
        let mut w = [u32::MAX; 4];
        let v = s.len();
        for (i, x) in s.into_iter().enumerate() {
            w[i] = x;
        }
        (w, v)
    })
}

fn flags_strategy() -> impl Strategy<Value = [bool; 4]> {
    proptest::array::uniform4(any::<bool>())
}

fn kinds() -> [SetOpKind; 3] {
    [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn sop_invariants_hold(
        (wa, va) in window_strategy(),
        (wb, vb) in window_strategy(),
        ea in flags_strategy(),
        eb in flags_strategy(),
        partial in any::<bool>(),
    ) {
        for kind in kinds() {
            let out = sop_set(kind, &wa, va, &ea, &wb, vb, &eb, partial);

            // (1) Consumption bounds and progress.
            prop_assert!(out.consume_a <= va);
            prop_assert!(out.consume_b <= vb);
            prop_assert!(
                out.consume_a == va || out.consume_b == vb,
                "at least one window must retire fully: {:?}", out
            );

            // (2) Emission is strictly increasing (sorted, duplicate-free).
            prop_assert!(
                out.emit.windows(2).all(|w| w[0] < w[1]),
                "{kind:?}: emit not strictly increasing: {:?}", out.emit
            );

            // (3) Emission membership.
            let in_a = |x: u32| wa[..va].contains(&x);
            let in_b = |x: u32| wb[..vb].contains(&x);
            for &x in &out.emit {
                match kind {
                    SetOpKind::Intersect => prop_assert!(in_a(x) && in_b(x)),
                    SetOpKind::Difference => prop_assert!(in_a(x) && !in_b(x)),
                    SetOpKind::Union => prop_assert!(in_a(x) || in_b(x)),
                }
            }

            // (4) Emitted flags are monotone (never cleared).
            for i in 0..4 {
                prop_assert!(!ea[i] || out.emitted_a[i], "flag A{i} cleared");
                prop_assert!(!eb[i] || out.emitted_b[i], "flag B{i} cleared");
            }

            // (5) Nothing beyond the boundary is emitted.
            let boundary = wa[va - 1].min(wb[vb - 1]);
            prop_assert!(out.emit.iter().all(|&x| x <= boundary));

            // (6) Previously-emitted lanes are not re-emitted.
            for i in 0..va {
                if ea[i] {
                    // A-lane flagged: only a union emission sourced from B
                    // may carry the same value; the value itself must then
                    // be a fresh B lane.
                    if out.emit.contains(&wa[i]) {
                        let j = wb[..vb].iter().position(|&y| y == wa[i]);
                        prop_assert!(
                            matches!((kind, j), (SetOpKind::Union, Some(j)) if !eb[j]),
                            "{kind:?} re-emitted flagged value {}", wa[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nonpartial_retires_exactly_one_window_unless_maxes_tie(
        (wa, va) in window_strategy(),
        (wb, vb) in window_strategy(),
    ) {
        let out = sop_set(
            SetOpKind::Intersect, &wa, va, &[false; 4], &wb, vb, &[false; 4], false,
        );
        let amax = wa[va - 1];
        let bmax = wb[vb - 1];
        if amax == bmax {
            prop_assert_eq!((out.consume_a, out.consume_b), (va, vb));
        } else if amax < bmax {
            prop_assert_eq!((out.consume_a, out.consume_b), (va, 0));
        } else {
            prop_assert_eq!((out.consume_a, out.consume_b), (0, vb));
        }
    }

    #[test]
    fn partial_consumption_is_boundary_exact(
        (wa, va) in window_strategy(),
        (wb, vb) in window_strategy(),
    ) {
        let out = sop_set(
            SetOpKind::Union, &wa, va, &[false; 4], &wb, vb, &[false; 4], true,
        );
        let amax = wa[va - 1];
        let bmax = wb[vb - 1];
        prop_assert_eq!(out.consume_a, wa[..va].iter().filter(|&&x| x <= bmax).count());
        prop_assert_eq!(out.consume_b, wb[..vb].iter().filter(|&&x| x <= amax).count());
    }

    #[test]
    fn sort4_network_matches_std(v in proptest::array::uniform4(any::<u32>())) {
        let got = sort4(v);
        let mut expect = v;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn merge8_network_matches_std(
        mut a in proptest::array::uniform4(any::<u32>()),
        mut b in proptest::array::uniform4(any::<u32>()),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let got = merge8(a, b);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(got.to_vec(), expect);
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }
}
