//! Process-wide memoization of assembled kernel programs.
//!
//! Assembling a set-op or sort kernel is deterministic in the processor
//! model, the kernel selection, and the data layout. Bench sweeps and the
//! runner's retry loop would otherwise re-assemble (and re-verify) the
//! identical program for every point or attempt; the cache hands out
//! [`Arc<Program>`] handles instead, which the simulator's shared-program
//! loader ([`dbx_cpu::Processor::load_program_shared`]) accepts without
//! copying the instruction image.
//!
//! The cache is a plain mutex-guarded map: kernel assembly happens well
//! off the per-cycle path, and holding the lock across a miss means two
//! host threads racing on the same key assemble it once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dbx_cpu::program::Program;
use dbx_cpu::SimError;

use crate::configs::ProcModel;
use crate::datapath::SetOpKind;
use crate::kernels::{SetLayout, SortLayout};

/// Memoization key: everything a kernel's assembly depends on. The layout
/// is part of the key because base addresses and element counts are baked
/// into the emitted immediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ProgKey {
    /// A sorted-set operation kernel.
    SetOp {
        /// Processor model the program was assembled for.
        model: ProcModel,
        /// The set operation.
        kind: SetOpKind,
        /// Input/output placement.
        layout: SetLayout,
    },
    /// A merge-sort kernel.
    Sort {
        /// Processor model (already lowered to its 1-LSU sort form).
        model: ProcModel,
        /// Ping-pong buffer placement.
        layout: SortLayout,
    },
}

/// A memoized assembly result.
#[derive(Clone)]
pub(crate) struct CachedProgram {
    /// The assembled (and preflight-verified) program.
    pub program: Arc<Program>,
    /// Sort kernels only: whether the sorted data ends in the scratch
    /// buffer (odd number of merge passes). `false` for set operations.
    pub in_dst: bool,
}

/// Cache capacity bound. On overflow the map is cleared outright — a
/// deterministic policy that keeps the steady state simple; sweeps cycle
/// through far fewer distinct (model, kernel, layout) triples than this.
const CACHE_CAP: usize = 256;

static ASSEMBLIES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<ProgKey, CachedProgram>> {
    static CACHE: OnceLock<Mutex<HashMap<ProgKey, CachedProgram>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of programs actually assembled (cache misses) since process
/// start. Monotone; regression tests assert on deltas of this to prove a
/// run (including its retries) assembles each kernel at most once.
pub fn assemblies() -> u64 {
    ASSEMBLIES.load(Ordering::Relaxed)
}

fn assembly_counts() -> &'static Mutex<HashMap<ProgKey, u64>> {
    static COUNTS: OnceLock<Mutex<HashMap<ProgKey, u64>>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// How often `key` has been assembled since process start. Unlike
/// [`assemblies`], this is immune to unrelated kernels assembled by
/// concurrently running tests, and it survives capacity clears of the
/// cache itself.
#[cfg(test)]
pub(crate) fn assemblies_for(key: &ProgKey) -> u64 {
    assembly_counts()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(key)
        .copied()
        .unwrap_or(0)
}

/// Looks up `key`, assembling with `build` on a miss. Errors from `build`
/// (bad layouts, preflight failures) are never cached, so every caller
/// sees them.
pub(crate) fn get_or_assemble(
    key: ProgKey,
    build: impl FnOnce() -> Result<CachedProgram, SimError>,
) -> Result<CachedProgram, SimError> {
    let mut map = cache().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = map.get(&key) {
        return Ok(hit.clone());
    }
    let built = build()?;
    ASSEMBLIES.fetch_add(1, Ordering::Relaxed);
    *assembly_counts()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(key)
        .or_insert(0) += 1;
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, built.clone());
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> ProgKey {
        ProgKey::Sort {
            model: ProcModel::Dba1Lsu,
            layout: SortLayout {
                src: 0x1000,
                dst: 0x2000,
                n,
            },
        }
    }

    fn dummy() -> CachedProgram {
        let mut b = dbx_cpu::program::ProgramBuilder::new();
        b.halt();
        CachedProgram {
            program: Arc::new(b.build().unwrap()),
            in_dst: false,
        }
    }

    #[test]
    fn hit_does_not_reassemble() {
        let k = key(u32::MAX); // distinct from any real layout
        let before = assemblies();
        get_or_assemble(k, || Ok(dummy())).unwrap();
        get_or_assemble(k, || panic!("cache hit must not rebuild")).unwrap();
        assert_eq!(assemblies(), before + 1);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let k = key(u32::MAX - 1);
        let r = get_or_assemble(k, || Err(SimError::BadProgram("nope".into())));
        assert!(r.is_err());
        // The next attempt still runs the builder.
        get_or_assemble(k, || Ok(dummy())).unwrap();
    }
}
