//! The host-parallel shard scheduler.
//!
//! The multicore partitioner ([`crate::multicore`]) and the query engine
//! model a shared-nothing board of simulated cores, but until this module
//! every simulated core ran *sequentially on one host thread* — a large
//! scaling campaign (the paper's Section 5.4 sweeps, the `repro bench`
//! figure suite, the CI fault matrix) was wall-clock bound by a single
//! host core. The scheduler runs independent shards — per-core simulator
//! instances, sweep points, posting-list unions — on a small work-stealing
//! pool of real host threads and hands the results back *in shard order*,
//! so every layer above can merge them deterministically: simulated cycle
//! counts, fault counters, and observe spans are bit-identical to the
//! sequential path no matter how many host threads ran the shards.
//!
//! Two properties make that cheap to guarantee:
//!
//! * Shards share nothing. Each task builds its own [`dbx_cpu::Processor`]
//!   (the Send-safety audit in `dbx-cpu` makes all simulator state
//!   migrate freely) and, when observed, records into its own local
//!   [`dbx_observe::TraceSink`] against fresh cycle clocks.
//! * Merge is positional. [`run_indexed`] returns `Vec<T>` indexed by
//!   shard, so the driver folds results left to right exactly as the
//!   sequential loop would have; local trace sinks are absorbed in shard
//!   order with per-track clock offsets ([`dbx_observe::Recorder::absorb`]).
//!
//! The pool itself is a classic batch work-stealing scheduler: worker `w`
//! seeds its own deque with shards `w, w+T, w+2T, …`, pops from the front
//! of its deque, and steals from the back of a neighbour's when it runs
//! dry. Shard runtimes are highly skewed (a value-aligned partition can
//! batch, retry, or degrade), which is exactly the case stealing absorbs.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How a fan-out layer maps its shards onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostSched {
    /// Run every shard on the calling thread, in shard order — the
    /// reference path the parallel scheduler must be bit-identical to.
    #[default]
    Sequential,
    /// Run shards on a work-stealing pool of host threads.
    Parallel {
        /// Worker threads; `0` means one per available host core.
        threads: usize,
    },
}

impl HostSched {
    /// The scheduler selected by the `DBX_HOST_THREADS` environment
    /// variable: unset (or unparsable) means [`HostSched::Sequential`],
    /// `0` or `auto` means one worker per host core, `N` means `N`
    /// workers. This is how CI's core-count matrix steers `repro bench`
    /// without plumbing a flag through every layer.
    pub fn from_env() -> HostSched {
        match std::env::var("DBX_HOST_THREADS") {
            Ok(v) if v == "auto" => HostSched::Parallel { threads: 0 },
            Ok(v) => match v.parse::<usize>() {
                Ok(0) => HostSched::Parallel { threads: 0 },
                Ok(n) => HostSched::Parallel { threads: n },
                Err(_) => HostSched::Sequential,
            },
            Err(_) => HostSched::Sequential,
        }
    }

    /// Worker threads a batch of `shards` would actually use (never more
    /// threads than shards, never zero).
    pub fn effective_threads(&self, shards: usize) -> usize {
        match *self {
            HostSched::Sequential => 1,
            HostSched::Parallel { threads } => {
                let t = if threads == 0 {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                } else {
                    threads
                };
                t.min(shards).max(1)
            }
        }
    }

    /// Whether this scheduler would spawn worker threads for `shards`.
    pub fn is_parallel(&self, shards: usize) -> bool {
        matches!(self, HostSched::Parallel { .. })
            && self.effective_threads(shards) > 1
            && shards > 1
    }
}

/// Pops the next shard for worker `w`: front of its own deque first, then
/// the back of the first non-empty neighbour (the steal).
fn next_shard(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue poisoned").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(i);
        }
    }
    None
}

/// Runs `f(0..shards)` under the scheduler and returns the results in
/// shard order.
///
/// `f` must be freely callable from worker threads (`Sync`) and its
/// results must travel back (`T: Send`); a worker panic propagates to the
/// caller. [`HostSched::Sequential`] (and degenerate parallel shapes —
/// one shard, one worker) call `f` on the current thread in shard order,
/// which is the bit-identity reference for everything built on top.
pub fn run_indexed<T, F>(sched: HostSched, shards: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = sched.effective_threads(shards);
    if threads <= 1 || shards <= 1 {
        return (0..shards).map(f).collect();
    }
    // Seed worker deques round-robin so initial work is balanced and a
    // worker's own shards stay in ascending order (cache-friendly when
    // shards index into the same input slices).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..shards).step_by(threads).collect()))
        .collect();
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(shards).collect();
    let harvested: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(i) = next_shard(queues, w) {
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect()
    });
    for (i, t) in harvested.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "shard {i} ran twice");
        results[i] = Some(t);
    }
    results
        .into_iter()
        .map(|r| r.expect("every shard produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_shard_order() {
        for sched in [
            HostSched::Sequential,
            HostSched::Parallel { threads: 1 },
            HostSched::Parallel { threads: 3 },
            HostSched::Parallel { threads: 0 },
        ] {
            let out = run_indexed(sched, 97, |i| i * i);
            assert_eq!(out, (0..97).map(|i| i * i).collect::<Vec<_>>(), "{sched:?}");
        }
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(HostSched::Parallel { threads: 4 }, 64, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn skewed_shards_spread_over_multiple_workers() {
        // Shard 0 is long; a single greedy worker would serialize. With
        // stealing, other workers must pick up the short shards.
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_indexed(HostSched::Parallel { threads: 4 }, 32, |i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        let n = seen.lock().unwrap().len();
        assert!(n >= 2, "expected >=2 workers to run shards, saw {n}");
    }

    #[test]
    fn empty_and_single_batches_are_degenerate() {
        let out: Vec<u32> = run_indexed(HostSched::Parallel { threads: 8 }, 0, |_| unreachable!());
        assert!(out.is_empty());
        let out = run_indexed(HostSched::Parallel { threads: 8 }, 1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn effective_threads_clamps_to_shards() {
        assert_eq!(HostSched::Sequential.effective_threads(100), 1);
        assert_eq!(HostSched::Parallel { threads: 8 }.effective_threads(3), 3);
        assert_eq!(HostSched::Parallel { threads: 2 }.effective_threads(100), 2);
        assert!(HostSched::Parallel { threads: 0 }.effective_threads(100) >= 1);
        assert!(!HostSched::Sequential.is_parallel(8));
        assert!(!HostSched::Parallel { threads: 4 }.is_parallel(1));
        assert!(HostSched::Parallel { threads: 4 }.is_parallel(8));
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(HostSched::Parallel { threads: 2 }, 8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(r.is_err(), "a shard panic must reach the caller");
    }
}
