//! TIE states of the DB instruction-set extension.
//!
//! Models the internal memories of the paper's Figures 8 and 9: the Load
//! states filled by `LD`, the Word states the `SOP` operates on, the Result
//! states, and the TmpStore/Store FIFO drained by `ST`. Deviation noted in
//! DESIGN.md: our Load states buffer up to two 128-bit beats (eight
//! elements) per set so that `LD_P` can always keep the Word states "fully
//! filled with elements" (Table 1) without bubbles; the paper draws four
//! Load states but asserts the same invariant.

/// Sentinel padding value for invalid lanes. Set elements must be strictly
/// below this; the runner validates inputs.
pub const SENTINEL: u32 = u32::MAX;

/// Default capacity of each per-set Load buffer in elements (two 128-bit
/// beats). A single-beat buffer (4) matches the paper's Figure 8 drawing
/// but bubbles under partial loading — see DESIGN.md and the
/// `ablation/load_buffer` bench.
pub const LOAD_BUF_CAP: usize = 8;
/// Capacity of the store FIFO in elements (TmpStore 3 + Store 4 + result
/// backpressure slack; must absorb one full union emission of 8 on top of
/// an undrained partial beat).
pub const STORE_FIFO_CAP: usize = 12;

/// A small shifting FIFO of set elements (a Load buffer or the store path).
#[derive(Debug, Clone)]
pub struct ElemFifo {
    buf: [u32; STORE_FIFO_CAP],
    len: usize,
    cap: usize,
}

impl ElemFifo {
    /// Creates an empty FIFO with the given capacity (<= 12).
    pub fn new(cap: usize) -> Self {
        assert!(cap <= STORE_FIFO_CAP);
        ElemFifo {
            buf: [SENTINEL; STORE_FIFO_CAP],
            len: 0,
            cap,
        }
    }

    /// Number of buffered elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        self.cap - self.len
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends elements; panics if capacity would be exceeded (callers
    /// check `free()` first — overflow is a datapath bug, not a data case).
    #[inline]
    pub fn push_slice(&mut self, vals: &[u32]) {
        assert!(vals.len() <= self.free(), "FIFO overflow: structural bug");
        self.buf[self.len..self.len + vals.len()].copy_from_slice(vals);
        self.len += vals.len();
    }

    /// Removes and returns up to `n` front elements.
    pub fn take(&mut self, n: usize) -> Vec<u32> {
        let mut out = [0u32; STORE_FIFO_CAP];
        let k = self.take_into(n, &mut out);
        out[..k].to_vec()
    }

    /// Removes up to `n` front elements into `out` (which must hold
    /// them); returns how many were moved. The allocation-free twin of
    /// [`Self::take`] for the per-cycle datapath.
    #[inline]
    pub fn take_into(&mut self, n: usize, out: &mut [u32]) -> usize {
        let k = n.min(self.len);
        out[..k].copy_from_slice(&self.buf[..k]);
        self.buf.copy_within(k..self.len, 0);
        self.len -= k;
        // Only the k slots vacated by the shift can hold stale values; slots
        // past them were already sentinel-filled (only `[..len]` is readable).
        for s in &mut self.buf[self.len..self.len + k] {
            *s = SENTINEL;
        }
        k
    }

    /// Peeks the front element.
    #[inline]
    pub fn front(&self) -> Option<u32> {
        (self.len > 0).then(|| self.buf[0])
    }

    /// Read-only view of the buffered elements.
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len]
    }

    /// Clears the FIFO.
    pub fn clear(&mut self) {
        self.len = 0;
        self.buf = [SENTINEL; STORE_FIFO_CAP];
    }
}

/// A 4-element Word window with validity count and per-lane emitted flags.
#[derive(Debug, Clone)]
pub struct Window {
    /// Front-aligned values; invalid lanes hold [`SENTINEL`].
    pub vals: [u32; 4],
    /// Valid lane count.
    pub cnt: usize,
    /// Per-lane "already emitted" flags (full-window-retirement mode).
    pub emitted: [bool; 4],
}

impl Default for Window {
    fn default() -> Self {
        Window {
            vals: [SENTINEL; 4],
            cnt: 0,
            emitted: [false; 4],
        }
    }
}

impl Window {
    /// Shifts out `consumed` front lanes (with their flags) and refills
    /// from `src` as far as possible.
    #[inline]
    pub fn shift_refill(&mut self, consumed: usize, src: &mut ElemFifo) {
        debug_assert!(consumed <= self.cnt);
        let remain = self.cnt - consumed;
        for i in 0..4 {
            if i < remain {
                self.vals[i] = self.vals[i + consumed];
                self.emitted[i] = self.emitted[i + consumed];
            } else {
                self.vals[i] = SENTINEL;
                self.emitted[i] = false;
            }
        }
        self.cnt = remain;
        let want = 4 - self.cnt;
        if want > 0 && !src.is_empty() {
            let mut got = [0u32; 4];
            let k = src.take_into(want, &mut got);
            self.vals[self.cnt..self.cnt + k].copy_from_slice(&got[..k]);
            self.cnt += k;
        }
    }

    /// True when the window holds four valid lanes.
    pub fn is_full(&self) -> bool {
        self.cnt == 4
    }
}

/// All TIE states of the DB extension.
#[derive(Debug, Clone)]
pub struct DbStates {
    /// Load buffer for set A / merge run 0.
    pub load_a: ElemFifo,
    /// Load buffer for set B / merge run 1.
    pub load_b: ElemFifo,
    /// Word window A (also the merge work vector).
    pub word_a: Window,
    /// Word window B.
    pub word_b: Window,
    /// Lanes of A consumed by the last `SOP`, pending `LD_P`.
    pub consumed_a: usize,
    /// Lanes of B consumed by the last `SOP`, pending `LD_P`.
    pub consumed_b: usize,
    /// Result states (up to 8 for union).
    pub result: Vec<u32>,
    /// Store FIFO (TmpStore + Store states).
    pub fifo: ElemFifo,
    /// Copy buffer for the 128-bit copy / presort path.
    pub cpy: ElemFifo,
    /// Read pointer of set A / merge run 0 (byte address, 16-aligned).
    pub ptr_a: u32,
    /// End address of set A.
    pub end_a: u32,
    /// Read pointer of set B / merge run 1.
    pub ptr_b: u32,
    /// End address of set B.
    pub end_b: u32,
    /// Write pointer of the result sequence.
    pub ptr_c: u32,
    /// Elements emitted to memory so far.
    pub out_cnt: u32,
    /// Core-loop completion flag (one input stream fully consumed).
    pub done: bool,
    /// Whether the merge work vector has been primed.
    pub merge_primed: bool,
}

impl Default for DbStates {
    fn default() -> Self {
        Self::with_load_buf_cap(LOAD_BUF_CAP)
    }
}

impl DbStates {
    /// Creates power-on states with a specific Load-buffer depth.
    pub fn with_load_buf_cap(cap: usize) -> Self {
        DbStates {
            load_a: ElemFifo::new(cap),
            load_b: ElemFifo::new(cap),
            word_a: Window::default(),
            word_b: Window::default(),
            consumed_a: 0,
            consumed_b: 0,
            result: Vec::with_capacity(8),
            fifo: ElemFifo::new(STORE_FIFO_CAP),
            cpy: ElemFifo::new(LOAD_BUF_CAP),
            ptr_a: 0,
            end_a: 0,
            ptr_b: 0,
            end_b: 0,
            ptr_c: 0,
            out_cnt: 0,
            done: false,
            merge_primed: false,
        }
    }

    /// Power-on reset of every state (the TIE reset values), keeping the
    /// configured Load-buffer depth.
    pub fn reset(&mut self) {
        *self = DbStates::with_load_buf_cap(self.load_a.capacity());
    }

    /// True when stream A can deliver no more elements (pointer exhausted
    /// and load buffer empty).
    pub fn a_supply_exhausted(&self) -> bool {
        self.ptr_a >= self.end_a && self.load_a.is_empty()
    }

    /// True when stream B can deliver no more elements.
    pub fn b_supply_exhausted(&self) -> bool {
        self.ptr_b >= self.end_b && self.load_b.is_empty()
    }

    /// True when window A can take part in a `SOP`: full, or holding the
    /// final tail of the stream.
    pub fn a_window_ready(&self) -> bool {
        self.word_a.is_full() || (self.a_supply_exhausted() && self.word_a.cnt > 0)
    }

    /// True when window B can take part in a `SOP`.
    pub fn b_window_ready(&self) -> bool {
        self.word_b.is_full() || (self.b_supply_exhausted() && self.word_b.cnt > 0)
    }

    /// True when window A is drained and the stream has ended.
    pub fn a_stream_done(&self) -> bool {
        self.a_supply_exhausted() && self.word_a.cnt == 0
    }

    /// True when window B is drained and the stream has ended.
    pub fn b_stream_done(&self) -> bool {
        self.b_supply_exhausted() && self.word_b.cnt == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_push_take_order() {
        let mut f = ElemFifo::new(8);
        f.push_slice(&[1, 2, 3]);
        f.push_slice(&[4]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.take(2), vec![1, 2]);
        assert_eq!(f.as_slice(), &[3, 4]);
        assert_eq!(f.front(), Some(3));
        assert_eq!(f.take(10), vec![3, 4]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn fifo_overflow_is_a_bug() {
        let mut f = ElemFifo::new(4);
        f.push_slice(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn window_shift_refill_preserves_order_and_flags() {
        let mut w = Window::default();
        let mut src = ElemFifo::new(8);
        src.push_slice(&[10, 20, 30, 40, 50, 60]);
        w.shift_refill(0, &mut src);
        assert_eq!(w.vals, [10, 20, 30, 40]);
        assert!(w.is_full());
        w.emitted = [false, true, true, false];
        w.shift_refill(2, &mut src);
        assert_eq!(w.vals, [30, 40, 50, 60]);
        assert_eq!(
            w.emitted,
            [true, false, false, false],
            "flags shift with lanes"
        );
        assert!(src.is_empty());
        // Partial refill leaves sentinels.
        w.shift_refill(3, &mut src);
        assert_eq!(w.cnt, 1);
        assert_eq!(w.vals, [60, SENTINEL, SENTINEL, SENTINEL]);
    }

    #[test]
    fn stream_status_predicates() {
        let mut s = DbStates::default();
        assert!(s.a_supply_exhausted());
        assert!(s.a_stream_done());
        s.ptr_a = 0x100;
        s.end_a = 0x200;
        assert!(!s.a_supply_exhausted());
        s.ptr_a = 0x200;
        s.load_a.push_slice(&[1]);
        assert!(
            !s.a_supply_exhausted(),
            "buffered elements still count as supply"
        );
        let _ = s.load_a.take(1);
        assert!(s.a_supply_exhausted());
        s.word_a.vals[0] = 5;
        s.word_a.cnt = 1;
        assert!(s.a_window_ready(), "tail window is ready when supply ended");
        assert!(!s.a_stream_done());
    }
}
