//! The DB instruction-set extension: operation set and execution semantics.
//!
//! This is the paper's contribution (Section 4, Table 1) as a pluggable
//! [`Extension`] for the customizable processor:
//!
//! | Paper instruction | Ops here |
//! |---|---|
//! | `LD` (per LSU) | `LD_A`, `LD_B`, `LD_ANY`, `LD_MERGE` |
//! | `LD_P` (per LSU) | `LDP_A`, `LDP_B` |
//! | `SOP` | `SOP_ISECT` / `SOP_UNION` / `SOP_DIFF` / `SOP_MERGE` |
//! | `ST_S` | `ST_S` |
//! | `ST` | `ST`, `ST_FLUSH` |
//! | fused `STORE_SOP` | `STORE_SOP_*` (SOP + ST, returns the loop flag) |
//! | fused `LD_LDP_SHUFFLE` | `LD_LDP_SHUFFLE` (ST_S + LD_P + LD) |
//! | presort load/store | `SORT4_LD` + `CPY_ST` |
//! | 128-bit copy | `CPY_LD_A`/`CPY_LD_B` + `CPY_ST` |
//!
//! plus `WUR_*`/`RUR_*` state-access ops (the TIE `add_read_write`
//! interface) and `DRAIN_*` for moving window/buffer tails to the store
//! path in the epilogues.
//!
//! **Intra-cycle ordering.** Ops issued in the same cycle execute in the
//! canonical dataflow order of the hardware pipeline (store side first,
//! then window refill, then loads), which realises the read-old/write-new
//! semantics of the fused `LD_LDP_SHUFFLE` instruction: `ST_S` reads the
//! Result states of the previous `SOP`, `LD_P` consumes the Load states
//! filled in earlier cycles, and `LD` refills them afterwards. Combining a
//! `SOP` with a `LD_P` in one cycle is rejected as a structural hazard —
//! in hardware that combination is what blows up the critical path.

use crate::datapath::{merge8, sop_set_into, sort4, SetOpKind, SopOutcome};
use crate::states::{DbStates, SENTINEL};
use dbx_cpu::ext::{Extension, LsuUse, OpDescriptor, TieCtx};
use dbx_cpu::{OpArgs, SimError};

/// Opcode constants of the DB extension.
pub mod opcodes {
    /// Reset all extension states.
    pub const INIT: u16 = 0;
    /// `ptr_a = ar[s]`.
    pub const WUR_PTR_A: u16 = 1;
    /// `end_a = ar[s]`.
    pub const WUR_END_A: u16 = 2;
    /// `ptr_b = ar[s]`.
    pub const WUR_PTR_B: u16 = 3;
    /// `end_b = ar[s]`.
    pub const WUR_END_B: u16 = 4;
    /// `ptr_c = ar[s]`.
    pub const WUR_PTR_C: u16 = 5;
    /// `ar[r] = done`.
    pub const RUR_DONE: u16 = 6;
    /// `ar[r] = out_cnt` (elements written to memory).
    pub const RUR_OUT_CNT: u16 = 7;
    /// `ar[r] = ptr_c`.
    pub const RUR_PTR_C: u16 = 8;
    /// `ar[r] = 1` when stream A is fully consumed.
    pub const RUR_A_DONE: u16 = 9;
    /// `ar[r] = 1` when stream B is fully consumed.
    pub const RUR_B_DONE: u16 = 10;
    /// `ar[r] = store-FIFO occupancy`.
    pub const RUR_FIFO_CNT: u16 = 11;
    /// Store one aligned beat (4 elements) from the FIFO when available.
    pub const ST: u16 = 12;
    /// Store the remaining tail (1..4 elements, byte-enabled).
    pub const ST_FLUSH: u16 = 13;
    /// Shuffle the Result states into the store FIFO.
    pub const ST_S: u16 = 14;
    /// Sorted-set intersection step.
    pub const SOP_ISECT: u16 = 15;
    /// Sorted-set union step.
    pub const SOP_UNION: u16 = 16;
    /// Sorted-set difference step.
    pub const SOP_DIFF: u16 = 17;
    /// Merge-sort step (bitonic 8-merge).
    pub const SOP_MERGE: u16 = 18;
    /// Refill Word window A from Load buffer A.
    pub const LDP_A: u16 = 19;
    /// Refill Word window B from Load buffer B.
    pub const LDP_B: u16 = 20;
    /// Load one beat of stream A.
    pub const LD_A: u16 = 21;
    /// Load one beat of stream B.
    pub const LD_B: u16 = 22;
    /// Load one beat of whichever stream is hungrier (single-LSU configs).
    pub const LD_ANY: u16 = 23;
    /// Load one beat for the merge run with the emptier buffer.
    pub const LD_MERGE: u16 = 24;
    /// Push the unemitted tail of window/buffer A into the store FIFO.
    pub const DRAIN_A: u16 = 25;
    /// Push the unemitted tail of window/buffer B into the store FIFO.
    pub const DRAIN_B: u16 = 26;
    /// Store up to one beat from the copy buffer (self-aligning).
    pub const CPY_ST: u16 = 27;
    /// Load up to one beat of stream A into the copy buffer.
    pub const CPY_LD_A: u16 = 28;
    /// Load up to one beat of stream B into the copy buffer.
    pub const CPY_LD_B: u16 = 29;
    /// Load one beat of stream A through the 4-element sorting network.
    pub const SORT4_LD: u16 = 30;
    /// Fused `ST` + `SOP_ISECT`; writes the continue flag to `ar[r]`.
    pub const STORE_SOP_ISECT: u16 = 31;
    /// Fused `ST` + `SOP_UNION`; writes the continue flag to `ar[r]`.
    pub const STORE_SOP_UNION: u16 = 32;
    /// Fused `ST` + `SOP_DIFF`; writes the continue flag to `ar[r]`.
    pub const STORE_SOP_DIFF: u16 = 33;
    /// Fused `ST` + `SOP_MERGE`; writes the continue flag to `ar[r]`.
    pub const STORE_MERGE: u16 = 34;
    /// Fused `ST_S` + `LD_P` (both) + `LD` (both LSUs, or arbitrated).
    pub const LD_LDP_SHUFFLE: u16 = 35;
    /// `ar[r] = 1` while the copy path still has work (either stream
    /// pointer unconsumed or the copy buffer non-empty).
    pub const RUR_CPY_PEND: u16 = 36;
    /// Number of defined opcodes.
    pub const COUNT: u16 = 37;
}

use opcodes as op;

/// Static configuration of the extension: how its datapaths are wired to
/// the processor's load–store units.
#[derive(Debug, Clone, Copy)]
pub struct DbExtConfig {
    /// Number of LSUs on the host core (1 or 2).
    pub n_lsus: usize,
    /// Partial loading enabled (`LD_P` tops windows up every cycle) or
    /// full-window reloading only.
    pub partial_loading: bool,
    /// LSU wired to stream A.
    pub lsu_a: usize,
    /// LSU wired to stream B.
    pub lsu_b: usize,
    /// LSU used by the store path.
    pub lsu_st: usize,
    /// Load-buffer depth per stream in elements (default 8 = two beats;
    /// 4 matches the paper's Figure 8 drawing but bubbles — ablatable).
    pub load_buf_cap: usize,
}

impl DbExtConfig {
    /// Wiring for a single-LSU core: everything on LSU0.
    pub fn one_lsu(partial_loading: bool) -> Self {
        DbExtConfig {
            n_lsus: 1,
            partial_loading,
            lsu_a: 0,
            lsu_b: 0,
            lsu_st: 0,
            load_buf_cap: crate::states::LOAD_BUF_CAP,
        }
    }

    /// Wiring for a dual-LSU core: set A on LSU0/DMEM0; set B and the
    /// result on LSU1/DMEM1 (paper Figures 8 and 9).
    pub fn two_lsu(partial_loading: bool) -> Self {
        DbExtConfig {
            n_lsus: 2,
            partial_loading,
            lsu_a: 0,
            lsu_b: 1,
            lsu_st: 1,
            load_buf_cap: crate::states::LOAD_BUF_CAP,
        }
    }

    /// Overrides the Load-buffer depth (4 or 8 elements).
    pub fn with_load_buf_cap(mut self, cap: usize) -> Self {
        assert!(cap == 4 || cap == 8, "load buffer is one or two beats");
        self.load_buf_cap = cap;
        self
    }
}

/// Micro-operations used for structural-hazard detection within a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    St,
    StS,
    Sop,
    LdpA,
    LdpB,
    LdA,
    LdB,
    CpySt,
    CpyLd,
    Drain,
}

/// The DB instruction-set extension.
#[derive(Debug)]
pub struct DbExtension {
    cfg: DbExtConfig,
    /// The TIE states (public for inspection in tests and reports).
    pub st: DbStates,
    /// Scratch outcome for the per-cycle `SOP` evaluation. Not
    /// architectural state — it only exists so the emit buffer's capacity
    /// is reused across cycles instead of reallocated (its contents are
    /// dead between `SOP`s: `u_sop` swaps the emitted values out).
    sop_scratch: SopOutcome,
}

impl DbExtension {
    /// Creates the extension with the given LSU wiring.
    pub fn new(cfg: DbExtConfig) -> Self {
        DbExtension {
            cfg,
            st: DbStates::with_load_buf_cap(cfg.load_buf_cap),
            sop_scratch: SopOutcome {
                consume_a: 0,
                consume_b: 0,
                emit: Vec::with_capacity(8),
                emitted_a: [false; 4],
                emitted_b: [false; 4],
            },
        }
    }

    /// The wiring configuration.
    pub fn config(&self) -> DbExtConfig {
        self.cfg
    }

    // ---- micro-op implementations ----

    fn u_st(&mut self, ctx: &mut TieCtx<'_>, flush: bool) -> Result<(), SimError> {
        let s = &mut self.st;
        if s.fifo.is_empty() {
            return Ok(());
        }
        let to_beat = 4 - ((s.ptr_c as usize % 16) / 4);
        let k = if flush {
            s.fifo.len().min(to_beat)
        } else {
            if s.fifo.len() < 4 || to_beat < 4 {
                return Ok(()); // wait for a full aligned beat
            }
            4
        };
        if k == 0 {
            return Ok(());
        }
        let mut vals = [0u32; crate::states::STORE_FIFO_CAP];
        let k = s.fifo.take_into(k, &mut vals);
        ctx.mem
            .store_lanes(self.cfg.lsu_st, s.ptr_c, &vals[..k], ctx.counters)?;
        s.ptr_c += 4 * k as u32;
        s.out_cnt += k as u32;
        Ok(())
    }

    fn u_st_s(&mut self) {
        let s = &mut self.st;
        if !s.result.is_empty() && s.fifo.free() >= s.result.len() {
            s.fifo.push_slice(&s.result);
            // `clear` (not `take`) so the buffer's capacity survives for
            // the next emit — the steady state allocates nothing.
            s.result.clear();
        }
    }

    fn u_sop(&mut self, kind: SetOpKind) {
        let s = &mut self.st;
        if s.done || !s.result.is_empty() || s.consumed_a > 0 || s.consumed_b > 0 {
            return; // backpressure or pending window refill
        }
        if s.a_stream_done() || s.b_stream_done() {
            s.done = true;
            return;
        }
        if !s.a_window_ready() || !s.b_window_ready() {
            return; // bubble: supply has not caught up
        }
        let out = &mut self.sop_scratch;
        sop_set_into(
            kind,
            &s.word_a.vals,
            s.word_a.cnt,
            &s.word_a.emitted,
            &s.word_b.vals,
            s.word_b.cnt,
            &s.word_b.emitted,
            self.cfg.partial_loading,
            out,
        );
        // `result` is empty here (checked above); the swap hands its spare
        // capacity to the scratch buffer for the next SOP.
        std::mem::swap(&mut s.result, &mut out.emit);
        s.consumed_a = out.consume_a;
        s.consumed_b = out.consume_b;
        s.word_a.emitted = out.emitted_a;
        s.word_b.emitted = out.emitted_b;
    }

    fn u_sop_merge(&mut self) {
        let s = &mut self.st;
        if s.done || !s.result.is_empty() {
            return;
        }
        let a_block = s.load_a.len() >= 4;
        let b_block = s.load_b.len() >= 4;
        let a_more = s.ptr_a < s.end_a;
        let b_more = s.ptr_b < s.end_b;
        enum Choice {
            A,
            B,
            Drain,
            Wait,
        }
        let choice = match (a_block, b_block) {
            (true, true) => {
                if s.load_a.front() <= s.load_b.front() {
                    Choice::A
                } else {
                    Choice::B
                }
            }
            (true, false) => {
                if b_more {
                    Choice::Wait // run 1's next block is not visible yet
                } else {
                    Choice::A
                }
            }
            (false, true) => {
                if a_more {
                    Choice::Wait
                } else {
                    Choice::B
                }
            }
            (false, false) => {
                if a_more || b_more {
                    Choice::Wait
                } else {
                    Choice::Drain
                }
            }
        };
        match choice {
            Choice::Wait => {}
            Choice::Drain => {
                if s.merge_primed {
                    s.result.clear();
                    s.result.extend_from_slice(&s.word_a.vals);
                    s.word_a = Default::default();
                    s.merge_primed = false;
                }
                s.done = true;
            }
            Choice::A | Choice::B => {
                let mut block = [SENTINEL; 4];
                let got = if matches!(choice, Choice::A) {
                    s.load_a.take_into(4, &mut block)
                } else {
                    s.load_b.take_into(4, &mut block)
                };
                debug_assert_eq!(got, 4, "merge consumes whole blocks");
                if !s.merge_primed {
                    s.word_a.vals = block;
                    s.word_a.cnt = 4;
                    s.merge_primed = true;
                } else {
                    let m = merge8(s.word_a.vals, block);
                    s.result.clear();
                    s.result.extend_from_slice(&m[..4]);
                    s.word_a.vals.copy_from_slice(&m[4..]);
                }
            }
        }
    }

    fn u_ldp(&mut self, b_side: bool) {
        let s = &mut self.st;
        let (w, src, consumed) = if b_side {
            (&mut s.word_b, &mut s.load_b, &mut s.consumed_b)
        } else {
            (&mut s.word_a, &mut s.load_a, &mut s.consumed_a)
        };
        if !self.cfg.partial_loading {
            // Full-window reloading: only act when the window is entirely
            // consumed or entirely empty.
            if (*consumed != w.cnt) && w.cnt != 0 {
                // Window partially consumed cannot happen in non-partial
                // SOP mode (it retires full windows), but guard anyway.
                return;
            }
        }
        w.shift_refill(*consumed, src);
        *consumed = 0;
    }

    fn u_ld(&mut self, ctx: &mut TieCtx<'_>, b_side: bool, lsu: usize) -> Result<(), SimError> {
        let s = &mut self.st;
        let (buf, ptr, end) = if b_side {
            (&mut s.load_b, &mut s.ptr_b, s.end_b)
        } else {
            (&mut s.load_a, &mut s.ptr_a, s.end_a)
        };
        if buf.free() < 4 || *ptr >= end {
            return Ok(());
        }
        // One 128-bit beat per cycle; a stream starting mid-beat loads the
        // partial beat first and is aligned from then on.
        let to_beat = 4 - ((*ptr as usize % 16) / 4);
        let n = (((end - *ptr) / 4) as usize).min(to_beat);
        let mut vals = [0u32; 4];
        ctx.mem
            .load_lanes_into(lsu, *ptr, &mut vals[..n], ctx.counters)?;
        buf.push_slice(&vals[..n]);
        *ptr += 4 * n as u32;
        Ok(())
    }

    fn u_ld_any(&mut self, ctx: &mut TieCtx<'_>) -> Result<(), SimError> {
        let s = &self.st;
        let a_can = s.load_a.free() >= 4 && s.ptr_a < s.end_a;
        let b_can = s.load_b.free() >= 4 && s.ptr_b < s.end_b;
        let a_supply = s.load_a.len() + s.word_a.cnt;
        let b_supply = s.load_b.len() + s.word_b.cnt;
        let lsu = self.cfg.lsu_a; // single-LSU wiring
        match (a_can, b_can) {
            (true, true) => {
                let b_side = b_supply < a_supply;
                self.u_ld(ctx, b_side, lsu)
            }
            (true, false) => self.u_ld(ctx, false, lsu),
            (false, true) => self.u_ld(ctx, true, lsu),
            (false, false) => Ok(()),
        }
    }

    fn u_ld_merge(&mut self, ctx: &mut TieCtx<'_>) -> Result<(), SimError> {
        let s = &self.st;
        let a_can = s.load_a.free() >= 4 && s.ptr_a < s.end_a;
        let b_can = s.load_b.free() >= 4 && s.ptr_b < s.end_b;
        let lsu = self.cfg.lsu_a;
        match (a_can, b_can) {
            (true, true) => {
                let b_side = s.load_b.len() < s.load_a.len();
                self.u_ld(ctx, b_side, lsu)
            }
            (true, false) => self.u_ld(ctx, false, lsu),
            (false, true) => self.u_ld(ctx, true, lsu),
            (false, false) => Ok(()),
        }
    }

    fn u_drain(&mut self, b_side: bool) {
        let s = &mut self.st;
        let (w, buf) = if b_side {
            (&mut s.word_b, &mut s.load_b)
        } else {
            (&mut s.word_a, &mut s.load_a)
        };
        // 4 window lanes + a full load buffer (its cap is bounded by the
        // FIFO cap, 12) can exceed the FIFO capacity; the oversize case
        // bails out below exactly as before.
        let mut vals = [0u32; 4 + crate::states::STORE_FIFO_CAP];
        let mut n = 0;
        for i in 0..w.cnt {
            if !w.emitted[i] {
                vals[n] = w.vals[i];
                n += 1;
            }
        }
        let tail = buf.as_slice();
        vals[n..n + tail.len()].copy_from_slice(tail);
        n += tail.len();
        if n > s.fifo.free() {
            return; // kernel must flush the FIFO first
        }
        s.fifo.push_slice(&vals[..n]);
        *w = Default::default();
        buf.clear();
    }

    fn u_cpy_st(&mut self, ctx: &mut TieCtx<'_>) -> Result<(), SimError> {
        let s = &mut self.st;
        if s.cpy.is_empty() {
            return Ok(());
        }
        let to_beat = 4 - ((s.ptr_c as usize % 16) / 4);
        let k = s.cpy.len().min(to_beat);
        let mut vals = [0u32; crate::states::STORE_FIFO_CAP];
        let k = s.cpy.take_into(k, &mut vals);
        ctx.mem
            .store_lanes(self.cfg.lsu_st, s.ptr_c, &vals[..k], ctx.counters)?;
        s.ptr_c += 4 * k as u32;
        s.out_cnt += k as u32;
        Ok(())
    }

    fn u_cpy_ld(
        &mut self,
        ctx: &mut TieCtx<'_>,
        b_side: bool,
        sorted: bool,
    ) -> Result<(), SimError> {
        let lsu = if b_side {
            self.cfg.lsu_b
        } else {
            self.cfg.lsu_a
        };
        let s = &mut self.st;
        let (ptr, end) = if b_side {
            (&mut s.ptr_b, s.end_b)
        } else {
            (&mut s.ptr_a, s.end_a)
        };
        if s.cpy.free() < 4 || *ptr >= end {
            return Ok(());
        }
        let to_beat = 4 - ((*ptr as usize % 16) / 4);
        let n = (((end - *ptr) / 4) as usize).min(to_beat);
        let mut vals = [0u32; 4];
        ctx.mem
            .load_lanes_into(lsu, *ptr, &mut vals[..n], ctx.counters)?;
        if sorted {
            debug_assert_eq!(n, 4, "presort input must be a multiple of 4");
            vals = sort4(vals);
        }
        s.cpy.push_slice(&vals[..n]);
        *ptr += 4 * n as u32;
        Ok(())
    }

    /// The micro-resources an op occupies, as a bitmask over [`Micro`]
    /// (bit `m as u16` set). A mask instead of a list keeps the per-cycle
    /// structural-hazard check off the allocator.
    fn micro_mask(opcode: u16) -> u16 {
        const fn bit(m: Micro) -> u16 {
            1 << m as u16
        }
        match opcode {
            op::ST | op::ST_FLUSH => bit(Micro::St),
            op::ST_S => bit(Micro::StS),
            op::SOP_ISECT | op::SOP_UNION | op::SOP_DIFF | op::SOP_MERGE => bit(Micro::Sop),
            op::LDP_A => bit(Micro::LdpA),
            op::LDP_B => bit(Micro::LdpB),
            op::LD_A => bit(Micro::LdA),
            op::LD_B => bit(Micro::LdB),
            op::LD_ANY | op::LD_MERGE => bit(Micro::LdA) | bit(Micro::LdB),
            op::DRAIN_A | op::DRAIN_B => bit(Micro::Drain),
            op::CPY_ST => bit(Micro::CpySt),
            op::CPY_LD_A | op::CPY_LD_B | op::SORT4_LD => bit(Micro::CpyLd),
            op::STORE_SOP_ISECT | op::STORE_SOP_UNION | op::STORE_SOP_DIFF | op::STORE_MERGE => {
                bit(Micro::St) | bit(Micro::Sop)
            }
            op::LD_LDP_SHUFFLE => {
                bit(Micro::StS)
                    | bit(Micro::LdpA)
                    | bit(Micro::LdpB)
                    | bit(Micro::LdA)
                    | bit(Micro::LdB)
            }
            _ => 0,
        }
    }

    /// Canonical intra-cycle stage of an op (lower runs first).
    fn stage_of(opcode: u16) -> u8 {
        match opcode {
            op::INIT..=op::RUR_FIFO_CNT | op::RUR_CPY_PEND => 0,
            op::ST | op::ST_FLUSH => 1,
            op::ST_S => 2,
            op::SOP_ISECT..=op::SOP_MERGE => 3,
            op::STORE_SOP_ISECT..=op::STORE_MERGE => 3,
            op::DRAIN_A | op::DRAIN_B => 3,
            op::LDP_A | op::LDP_B => 4,
            op::LD_LDP_SHUFFLE => 2,
            op::LD_A..=op::LD_MERGE => 5,
            op::CPY_ST => 6,
            op::CPY_LD_A | op::CPY_LD_B | op::SORT4_LD => 7,
            _ => 0,
        }
    }

    fn exec_one(
        &mut self,
        opcode: u16,
        args: OpArgs,
        ctx: &mut TieCtx<'_>,
    ) -> Result<(), SimError> {
        let r = args.r as usize & 15;
        let sreg = args.s as usize & 15;
        match opcode {
            op::INIT => self.st.reset(),
            op::WUR_PTR_A => self.st.ptr_a = ctx.ar[sreg],
            op::WUR_END_A => self.st.end_a = ctx.ar[sreg],
            op::WUR_PTR_B => self.st.ptr_b = ctx.ar[sreg],
            op::WUR_END_B => self.st.end_b = ctx.ar[sreg],
            op::WUR_PTR_C => self.st.ptr_c = ctx.ar[sreg],
            op::RUR_DONE => ctx.ar[r] = self.st.done as u32,
            op::RUR_OUT_CNT => ctx.ar[r] = self.st.out_cnt,
            op::RUR_PTR_C => ctx.ar[r] = self.st.ptr_c,
            op::RUR_A_DONE => ctx.ar[r] = self.st.a_stream_done() as u32,
            op::RUR_B_DONE => ctx.ar[r] = self.st.b_stream_done() as u32,
            op::RUR_FIFO_CNT => ctx.ar[r] = self.st.fifo.len() as u32,
            op::RUR_CPY_PEND => {
                let st = &self.st;
                ctx.ar[r] =
                    (st.ptr_a < st.end_a || st.ptr_b < st.end_b || !st.cpy.is_empty()) as u32;
            }
            op::ST => self.u_st(ctx, false)?,
            op::ST_FLUSH => self.u_st(ctx, true)?,
            op::ST_S => self.u_st_s(),
            op::SOP_ISECT => self.u_sop(SetOpKind::Intersect),
            op::SOP_UNION => self.u_sop(SetOpKind::Union),
            op::SOP_DIFF => self.u_sop(SetOpKind::Difference),
            op::SOP_MERGE => self.u_sop_merge(),
            op::LDP_A => self.u_ldp(false),
            op::LDP_B => self.u_ldp(true),
            op::LD_A => self.u_ld(ctx, false, self.cfg.lsu_a)?,
            op::LD_B => self.u_ld(ctx, true, self.cfg.lsu_b)?,
            op::LD_ANY => self.u_ld_any(ctx)?,
            op::LD_MERGE => self.u_ld_merge(ctx)?,
            op::DRAIN_A => self.u_drain(false),
            op::DRAIN_B => self.u_drain(true),
            op::CPY_ST => self.u_cpy_st(ctx)?,
            op::CPY_LD_A => self.u_cpy_ld(ctx, false, false)?,
            op::CPY_LD_B => self.u_cpy_ld(ctx, true, false)?,
            op::SORT4_LD => self.u_cpy_ld(ctx, false, true)?,
            op::STORE_SOP_ISECT | op::STORE_SOP_UNION | op::STORE_SOP_DIFF => {
                self.u_st(ctx, false)?;
                let kind = match opcode {
                    op::STORE_SOP_ISECT => SetOpKind::Intersect,
                    op::STORE_SOP_UNION => SetOpKind::Union,
                    _ => SetOpKind::Difference,
                };
                self.u_sop(kind);
                ctx.ar[r] = (!self.st.done) as u32;
            }
            op::STORE_MERGE => {
                // The merge path needs no reordering shuffle (Section 4):
                // the merge network's low half goes straight to the store
                // FIFO in the same cycle.
                self.u_st(ctx, false)?;
                self.u_sop_merge();
                self.u_st_s();
                ctx.ar[r] = (!self.st.done) as u32;
            }
            op::LD_LDP_SHUFFLE => {
                self.u_st_s();
                self.u_ldp(false);
                self.u_ldp(true);
                if self.cfg.n_lsus == 2 {
                    self.u_ld(ctx, false, self.cfg.lsu_a)?;
                    self.u_ld(ctx, true, self.cfg.lsu_b)?;
                } else {
                    self.u_ld_any(ctx)?;
                }
            }
            other => return Err(SimError::UnknownExtOp { op: other }),
        }
        Ok(())
    }
}

impl Extension for DbExtension {
    fn name(&self) -> &'static str {
        "db"
    }

    fn op_count(&self) -> u16 {
        op::COUNT
    }

    fn op_descriptor(&self, opcode: u16) -> Result<OpDescriptor, SimError> {
        // State vocabulary for static analysis. The names of the micro
        // resources ("st", "sop", "ld_a", ...) double as the written-state
        // names so a static same-state-in-one-bundle check reproduces the
        // runtime duplicate-micro hazard exactly — neither stricter nor
        // looser. The WUR-visible pointer registers get their own names.
        const ALL_STATES: &[&str] = &[
            "ptr_a", "end_a", "ptr_b", "end_b", "ptr_c", "st", "st_s", "sop", "ldp_a", "ldp_b",
            "ld_a", "ld_b", "drain", "cpy_st", "cpy_ld",
        ];
        const STREAM_A: &[&str] = &["ptr_a", "end_a"];
        const STREAM_B: &[&str] = &["ptr_b", "end_b"];
        const STREAM_AB: &[&str] = &["ptr_a", "end_a", "ptr_b", "end_b"];
        type D = (
            &'static str,
            LsuUse,
            bool,
            bool,
            &'static [&'static str],
            &'static [&'static str],
        );
        // (name, lsu, writes_ar, reads_ar, states_written, states_read)
        let (name, lsu, writes_ar, reads_ar, states_written, states_read): D = match opcode {
            op::INIT => ("db.init", LsuUse::None, false, false, ALL_STATES, &[]),
            op::WUR_PTR_A => ("db.wur.ptra", LsuUse::None, false, true, &["ptr_a"], &[]),
            op::WUR_END_A => ("db.wur.enda", LsuUse::None, false, true, &["end_a"], &[]),
            op::WUR_PTR_B => ("db.wur.ptrb", LsuUse::None, false, true, &["ptr_b"], &[]),
            op::WUR_END_B => ("db.wur.endb", LsuUse::None, false, true, &["end_b"], &[]),
            op::WUR_PTR_C => ("db.wur.ptrc", LsuUse::None, false, true, &["ptr_c"], &[]),
            op::RUR_DONE => ("db.rur.done", LsuUse::None, true, false, &[], &["sop"]),
            op::RUR_OUT_CNT => ("db.rur.outcnt", LsuUse::None, true, false, &[], &["st"]),
            op::RUR_PTR_C => ("db.rur.ptrc", LsuUse::None, true, false, &[], &["ptr_c"]),
            op::RUR_A_DONE => ("db.rur.adone", LsuUse::None, true, false, &[], &["ld_a"]),
            op::RUR_B_DONE => ("db.rur.bdone", LsuUse::None, true, false, &[], &["ld_b"]),
            op::RUR_FIFO_CNT => ("db.rur.fifocnt", LsuUse::None, true, false, &[], &["sop"]),
            op::RUR_CPY_PEND => (
                "db.rur.cpypend",
                LsuUse::None,
                true,
                false,
                &[],
                &["cpy_st"],
            ),
            op::ST => (
                "db.st",
                LsuUse::One(self.cfg.lsu_st),
                false,
                false,
                &["st"],
                &["sop", "ptr_c"],
            ),
            op::ST_FLUSH => (
                "db.st.flush",
                LsuUse::One(self.cfg.lsu_st),
                false,
                false,
                &["st"],
                &["sop", "ptr_c"],
            ),
            op::ST_S => ("db.st_s", LsuUse::None, false, false, &["st_s"], &["sop"]),
            op::SOP_ISECT => (
                "db.sop.isect",
                LsuUse::None,
                false,
                false,
                &["sop"],
                &["ld_a", "ld_b"],
            ),
            op::SOP_UNION => (
                "db.sop.union",
                LsuUse::None,
                false,
                false,
                &["sop"],
                &["ld_a", "ld_b"],
            ),
            op::SOP_DIFF => (
                "db.sop.diff",
                LsuUse::None,
                false,
                false,
                &["sop"],
                &["ld_a", "ld_b"],
            ),
            op::SOP_MERGE => (
                "db.sop.merge",
                LsuUse::None,
                false,
                false,
                &["sop"],
                &["ld_a", "ld_b"],
            ),
            op::LDP_A => (
                "db.ldp.a",
                LsuUse::None,
                false,
                false,
                &["ldp_a"],
                &["ld_a"],
            ),
            op::LDP_B => (
                "db.ldp.b",
                LsuUse::None,
                false,
                false,
                &["ldp_b"],
                &["ld_b"],
            ),
            op::LD_A => (
                "db.ld.a",
                LsuUse::One(self.cfg.lsu_a),
                false,
                false,
                &["ld_a"],
                STREAM_A,
            ),
            op::LD_B => (
                "db.ld.b",
                LsuUse::One(self.cfg.lsu_b),
                false,
                false,
                &["ld_b"],
                STREAM_B,
            ),
            op::LD_ANY => (
                "db.ld.any",
                LsuUse::One(self.cfg.lsu_a),
                false,
                false,
                &["ld_a", "ld_b"],
                STREAM_AB,
            ),
            op::LD_MERGE => (
                "db.ld.merge",
                LsuUse::One(self.cfg.lsu_a),
                false,
                false,
                &["ld_a", "ld_b"],
                STREAM_AB,
            ),
            op::DRAIN_A => (
                "db.drain.a",
                LsuUse::None,
                false,
                false,
                &["drain"],
                &["ld_a"],
            ),
            op::DRAIN_B => (
                "db.drain.b",
                LsuUse::None,
                false,
                false,
                &["drain"],
                &["ld_b"],
            ),
            op::CPY_ST => (
                "db.cpy.st",
                LsuUse::One(self.cfg.lsu_st),
                false,
                false,
                &["cpy_st"],
                &["cpy_ld", "ptr_c"],
            ),
            op::CPY_LD_A => (
                "db.cpy.ld.a",
                LsuUse::One(self.cfg.lsu_a),
                false,
                false,
                &["cpy_ld"],
                STREAM_A,
            ),
            op::CPY_LD_B => (
                "db.cpy.ld.b",
                LsuUse::One(self.cfg.lsu_b),
                false,
                false,
                &["cpy_ld"],
                STREAM_B,
            ),
            op::SORT4_LD => (
                "db.sort4.ld",
                LsuUse::One(self.cfg.lsu_a),
                false,
                false,
                &["cpy_ld"],
                STREAM_A,
            ),
            op::STORE_SOP_ISECT => (
                "db.store_sop.isect",
                LsuUse::One(self.cfg.lsu_st),
                true,
                false,
                &["st", "sop"],
                &["ld_a", "ld_b", "ptr_c"],
            ),
            op::STORE_SOP_UNION => (
                "db.store_sop.union",
                LsuUse::One(self.cfg.lsu_st),
                true,
                false,
                &["st", "sop"],
                &["ld_a", "ld_b", "ptr_c"],
            ),
            op::STORE_SOP_DIFF => (
                "db.store_sop.diff",
                LsuUse::One(self.cfg.lsu_st),
                true,
                false,
                &["st", "sop"],
                &["ld_a", "ld_b", "ptr_c"],
            ),
            op::STORE_MERGE => (
                "db.store_merge",
                LsuUse::One(self.cfg.lsu_st),
                true,
                false,
                &["st", "sop"],
                &["ld_a", "ld_b", "ptr_c"],
            ),
            op::LD_LDP_SHUFFLE => (
                "db.ld_ldp_shuffle",
                LsuUse::Multi,
                false,
                false,
                &["st_s", "ldp_a", "ldp_b", "ld_a", "ld_b"],
                STREAM_AB,
            ),
            other => return Err(SimError::UnknownExtOp { op: other }),
        };
        Ok(OpDescriptor {
            name,
            lsu,
            writes_ar,
            reads_ar,
            states_written,
            states_read,
            slot_ok: true,
            latency: 1,
        })
    }

    fn execute(&mut self, ops: &[(u16, OpArgs)], ctx: &mut TieCtx<'_>) -> Result<u32, SimError> {
        // The overwhelmingly common case — a single extension op — needs
        // neither the hazard scan nor the staging sort.
        if let [(o, args)] = ops {
            self.exec_one(*o, *args, ctx)?;
            ctx.counters.count_ext_op(*o);
            return Ok(0);
        }
        // Structural-hazard check: no duplicated micro-resources, and SOP
        // never shares a cycle with LD_P (critical-path constraint).
        let mut seen: u16 = 0;
        for (o, _) in ops {
            let m = Self::micro_mask(*o);
            if seen & m != 0 {
                return Err(SimError::WriteConflict {
                    state: "db micro-resource",
                });
            }
            seen |= m;
        }
        const SOP: u16 = 1 << Micro::Sop as u16;
        const LDP: u16 = (1 << Micro::LdpA as u16) | (1 << Micro::LdpB as u16);
        if seen & SOP != 0 && seen & LDP != 0 {
            return Err(SimError::WriteConflict {
                state: "word window (SOP with LD_P)",
            });
        }
        // Canonical dataflow order: a stable insertion sort on a stack
        // buffer for real bundle widths, falling back to a heap sort for
        // pathologically wide op groups.
        if ops.len() <= 8 {
            let mut ordered = [(0u16, OpArgs::default()); 8];
            ordered[..ops.len()].copy_from_slice(ops);
            let ordered = &mut ordered[..ops.len()];
            for i in 1..ordered.len() {
                let mut j = i;
                while j > 0 && Self::stage_of(ordered[j - 1].0) > Self::stage_of(ordered[j].0) {
                    ordered.swap(j - 1, j);
                    j -= 1;
                }
            }
            for &(o, args) in ordered.iter() {
                self.exec_one(o, args, ctx)?;
                ctx.counters.count_ext_op(o);
            }
        } else {
            let mut ordered: Vec<(u16, OpArgs)> = ops.to_vec();
            ordered.sort_by_key(|(o, _)| Self::stage_of(*o));
            for (o, args) in ordered {
                self.exec_one(o, args, ctx)?;
                ctx.counters.count_ext_op(o);
            }
        }
        Ok(0)
    }

    fn reset(&mut self) {
        self.st.reset();
    }

    /// Corrupts one bit of the extension's architectural state storage.
    /// The selector maps deterministically over the user-visible states
    /// (Word windows, result pointer, output counter, done flag) —
    /// the soft-error model for the flip-flop area of Figures 8/9.
    fn inject_state_fault(&mut self, selector: u64) {
        let bit = (selector & 31) as u32;
        let mask = 1u32 << bit;
        let lane = ((selector >> 8) % 4) as usize;
        match (selector >> 5) % 5 {
            0 => self.st.word_a.vals[lane] ^= mask,
            1 => self.st.word_b.vals[lane] ^= mask,
            2 => self.st.ptr_c ^= mask,
            3 => self.st.out_cnt ^= mask,
            _ => self.st.done = !self.st.done,
        }
    }
}
