//! High-level runners: place data, build the right kernel for a processor
//! model, simulate, and verify invariants.
//!
//! This is the API most callers want:
//!
//! ```
//! use dbx_core::configs::ProcModel;
//! use dbx_core::datapath::SetOpKind;
//! use dbx_core::runner::run_set_op;
//!
//! let a: Vec<u32> = (0..100).map(|i| 2 * i).collect();
//! let b: Vec<u32> = (0..100).map(|i| 3 * i).collect();
//! let run = run_set_op(ProcModel::Dba2LsuEis { partial: true },
//!                      SetOpKind::Intersect, &a, &b).unwrap();
//! assert!(run.result.iter().all(|x| x % 6 == 0));
//! assert!(run.cycles > 0);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::configs::ProcModel;
use crate::datapath::SetOpKind;
use crate::kernels::{hwset, hwsort, scalar, SetLayout, SortLayout};
use crate::ops::DbExtension;
use crate::progcache;
use crate::states::SENTINEL;
use dbx_cpu::ext::Extension;
use dbx_cpu::observe::emit_kernel_run;
use dbx_cpu::program::Program;
use dbx_cpu::{
    MachineFault, Processor, ProfileMode, ProfileSnapshot, RunStats, SimError, DMEM0_BASE,
    DMEM1_BASE, SYSMEM_BASE,
};
use dbx_faults::{FaultCounters, FaultPlan, ProtectionKind};
use dbx_observe::{ArgValue, Observer};

/// Cycle budget for a single kernel run — generous; kernels that exceed it
/// are broken, not slow.
const MAX_CYCLES: u64 = 2_000_000_000;

/// Whether runners statically verify programs before simulating them.
static PREFLIGHT: AtomicBool = AtomicBool::new(false);

/// Opts all subsequent kernel runs in this process into the static
/// pre-flight verifier (`dbx-analysis`): error-severity findings abort the
/// run with [`SimError::BadProgram`] before a single cycle is simulated.
/// Also enabled by setting the `DBX_PREFLIGHT` environment variable to
/// anything but `0`.
pub fn set_preflight(on: bool) {
    PREFLIGHT.store(on, Ordering::Relaxed);
}

fn preflight_enabled() -> bool {
    PREFLIGHT.load(Ordering::Relaxed) || std::env::var_os("DBX_PREFLIGHT").is_some_and(|v| v != "0")
}

/// Runs the static verifier over `program` as it will execute on `model`,
/// when pre-flight is enabled. Warnings are ignored here; `dbx-lint`
/// surfaces them interactively.
fn preflight_check(program: &Program, model: ProcModel) -> Result<(), SimError> {
    if !preflight_enabled() {
        return Ok(());
    }
    let cfg = model.cpu_config();
    let ext = model.wiring().map(DbExtension::new);
    let ext_ref = ext.as_ref().map(|e| e as &dyn Extension);
    dbx_analysis::preflight(program, ext_ref, &cfg).map(|_warnings| ())
}

/// What a runner does when a machine fault (detected upset, watchdog
/// expiry, failed DMA) interrupts a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Surface the fault to the caller unchanged.
    #[default]
    FailFast,
    /// Re-run the kernel from clean inputs up to `max_retries` times
    /// (soft errors are transient; a repeat normally succeeds).
    Retry {
        /// Attempts beyond the first before giving up.
        max_retries: u32,
    },
    /// Retry like [`RecoveryPolicy::Retry`], then fall back to the scalar
    /// baseline kernel — the EIS datapath is suspected bad, the plain
    /// pipeline is trusted.
    DegradeToScalar {
        /// Attempts on the accelerated kernel before degrading.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// Re-run attempts granted on the primary kernel.
    pub fn max_retries(&self) -> u32 {
        match *self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::Retry { max_retries }
            | RecoveryPolicy::DegradeToScalar { max_retries } => max_retries,
        }
    }
}

/// Resilience knobs for a kernel run. `Default` reproduces the plain
/// [`run_set_op`] / [`run_sort`] behaviour: model-default protection, no
/// injected faults, fail fast, no watchdog.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Overrides the model's local-memory protection scheme.
    pub protection: Option<ProtectionKind>,
    /// Deterministic fault plan, applied to the *first* attempt only
    /// (soft errors are transient; retries run on clean hardware).
    pub fault_plan: Option<FaultPlan>,
    /// What to do when a machine fault is raised.
    pub policy: RecoveryPolicy,
    /// Watchdog cycle budget per attempt (`None` disarms it). The
    /// degraded scalar attempt runs unwatched: the fallback kernel is
    /// roughly an order of magnitude slower, so the accelerated budget
    /// would trip spuriously.
    pub watchdog: Option<u64>,
    /// Remaining cycle budget of the enclosing query deadline (`None`
    /// means no deadline). Kernels arm their watchdog with
    /// `min(watchdog, deadline)` so a runaway attempt cannot outlive
    /// the query budget; the serving layer converts the resulting
    /// watchdog fault into a typed deadline error.
    pub deadline: Option<u64>,
    /// Observability sink. Disabled by default; when enabled, every
    /// attempt emits a cycle-domain span (successful attempts as `kernel`
    /// spans with profile-region children, faulted attempts as `fault`
    /// spans) plus the run's event counters. The observer never touches
    /// the simulated machine, so enabling it cannot change cycle counts.
    pub observer: Observer,
    /// Forces the simulator's precise per-step execution loop even when a
    /// run is fast-path eligible. Results are bit-identical either way —
    /// the differential equivalence suite uses this as its reference leg;
    /// production callers leave it off.
    pub force_precise: bool,
    /// How cycles are attributed to addresses during the run.
    /// [`ProfileMode::Off`] keeps the pre-existing behaviour: profiling
    /// switches on (precisely) exactly when the observer is enabled.
    /// Setting a mode explicitly overrides that coupling —
    /// [`ProfileMode::Sampled`] in particular profiles *without* leaving
    /// the fast execution path, which is how the serving layer feeds
    /// `WeightModel::Profile` without paying the precise-loop tax.
    pub profile: ProfileMode,
    /// How fan-out layers — [`crate::multicore`], the query engine, the
    /// bench sweeps — map independent shards onto host threads. The
    /// single-kernel runners in this module ignore it (one kernel is one
    /// shard). Whatever it is set to, results, simulated cycle counts,
    /// fault counters, and observe traces are bit-identical to
    /// [`crate::sched::HostSched::Sequential`].
    pub sched: crate::sched::HostSched,
}

impl RunOptions {
    /// The watchdog budget an attempt actually runs under: the tighter
    /// of the per-attempt watchdog and the query deadline budget.
    pub fn effective_watchdog(&self) -> Option<u64> {
        match (self.watchdog, self.deadline) {
            (Some(w), Some(d)) => Some(w.min(d)),
            (w, d) => w.or(d),
        }
    }
}

/// Outcome of a simulated kernel run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// The computed result (set-operation output or sorted data).
    pub result: Vec<u32>,
    /// Simulated cycles (of the successful attempt).
    pub cycles: u64,
    /// Full run statistics (activity counters feed the power model).
    pub stats: RunStats,
    /// Encoded program size in bytes (instruction-memory footprint).
    pub program_bytes: u32,
    /// Re-run attempts consumed by the recovery policy.
    pub retries: u32,
    /// Whether the result came from the degraded scalar fallback.
    pub degraded: bool,
    /// Fault counters aggregated over every attempt.
    pub faults: FaultCounters,
    /// The last machine fault a retry or degrade recovered from.
    pub recovered_fault: Option<MachineFault>,
    /// Cycle-attribution profile of the successful attempt. Present when
    /// the run was observed ([`RunOptions::observer`]) or a profiling mode
    /// was requested explicitly ([`RunOptions::profile`]).
    pub profile: Option<ProfileSnapshot>,
}

impl KernelRun {
    /// Throughput in million elements per second at core frequency
    /// `f_mhz`, given the element count the paper's metric uses
    /// (`l_a + l_b` for set operations, `n` for sorting).
    pub fn throughput_meps(&self, elements: u64, f_mhz: f64) -> f64 {
        self.stats.throughput_meps(elements, f_mhz)
    }
}

fn align16(x: u32) -> u32 {
    (x + 15) & !15
}

fn validate_set(name: &str, s: &[u32]) -> Result<(), SimError> {
    for w in s.windows(2) {
        if w[0] >= w[1] {
            return Err(SimError::BadProgram(format!(
                "set {name} is not strictly increasing at value {}",
                w[1]
            )));
        }
    }
    if s.last().copied() == Some(SENTINEL) {
        return Err(SimError::BadProgram(format!(
            "set {name} contains the sentinel value u32::MAX"
        )));
    }
    Ok(())
}

/// Builds the processor for a model (with extension attached when present).
pub fn build_processor(model: ProcModel) -> Result<Processor, SimError> {
    build_processor_with(model, None)
}

/// Like [`build_processor`], optionally overriding the local-memory
/// protection scheme of the model's configuration.
pub fn build_processor_with(
    model: ProcModel,
    protection: Option<ProtectionKind>,
) -> Result<Processor, SimError> {
    let mut cfg = model.cpu_config();
    if let Some(pk) = protection {
        cfg.dmem_protection = pk;
    }
    let mut p = Processor::new(cfg)?;
    if let Some(wiring) = model.wiring() {
        p.attach_extension(Box::new(DbExtension::new(wiring)));
    }
    Ok(p)
}

/// Emits the kernel span (with profile-region children when profiling
/// was on) and the run's event counters for one successful attempt.
#[allow(clippy::too_many_arguments)]
fn emit_run_observation(
    obs: &Observer,
    kernel: &str,
    model: ProcModel,
    snap: Option<&ProfileSnapshot>,
    stats: &RunStats,
    elements: u64,
    rows_out: u64,
    attempt: u32,
) {
    if !obs.is_enabled() {
        return;
    }
    emit_kernel_run(
        obs,
        kernel,
        stats,
        snap,
        &[
            ("model", ArgValue::from(model.name())),
            ("elements", elements.into()),
            ("rows_out", rows_out.into()),
            ("attempt", u64::from(attempt).into()),
        ],
    );
}

/// Emits a `fault`-category span for an attempt a machine fault cut
/// short, so retries and degrades stay visible on the timeline.
fn emit_fault_observation(
    obs: &Observer,
    kernel: &str,
    model: ProcModel,
    p: &Processor,
    mf: &MachineFault,
    attempt: u32,
) {
    if !obs.is_enabled() {
        return;
    }
    obs.place(kernel, "fault", p.cycles, || {
        vec![
            ("model", ArgValue::from(model.name())),
            ("cause", format!("{:?}", mf.cause).into()),
            ("attempt", u64::from(attempt).into()),
        ]
    });
    for (name, value) in p.counters.named() {
        if value != 0 {
            obs.counter(name, value as f64);
        }
    }
}

/// The trusted fallback model for [`RecoveryPolicy::DegradeToScalar`]:
/// the same core with the EIS datapath switched off. Scalar models
/// degrade to themselves (a clean re-run on the plain pipeline).
pub fn scalar_fallback(model: ProcModel) -> ProcModel {
    match model {
        ProcModel::Dba1LsuEis { .. } => ProcModel::Dba1Lsu,
        ProcModel::Dba2LsuEis { .. } => ProcModel::Dba2Lsu,
        m => m,
    }
}

/// Chooses where the two sets and the result live for a model — the
/// exact layout [`run_set_op_with`] places data with. Public so analysis
/// layers (profile-guided DSE) can rebuild the *same* program the runner
/// executed and map profile addresses back onto it.
pub fn set_layout(model: ProcModel, a_len: u32, b_len: u32) -> Result<SetLayout, SimError> {
    let (a_base, b_base, c_base, limit): (u32, u32, u32, u32) = match model {
        ProcModel::Mini108 => {
            let a = SYSMEM_BASE;
            let b = align16(a + 4 * a_len);
            let c = align16(b + 4 * b_len);
            (a, b, c, u32::MAX)
        }
        ProcModel::Dba1Lsu | ProcModel::Dba1LsuEis { .. } => {
            let a = DMEM0_BASE;
            let b = align16(a + 4 * a_len);
            let c = align16(b + 4 * b_len);
            (a, b, c, DMEM0_BASE + 64 * 1024)
        }
        // Plain DBA_2LSU: the scalar compiler "is not able to make use"
        // of the second unit, so everything lives in DMEM0 (32 KiB).
        ProcModel::Dba2Lsu => {
            let a = DMEM0_BASE;
            let b = align16(a + 4 * a_len);
            let c = align16(b + 4 * b_len);
            (a, b, c, DMEM0_BASE + 32 * 1024)
        }
        ProcModel::Dba2LsuEis { .. } => {
            // Set A in DMEM0; set B and the result in DMEM1 (Figures 8/9).
            let a = DMEM0_BASE;
            let b = DMEM1_BASE;
            let c = align16(b + 4 * b_len);
            if 4 * a_len > 32 * 1024 {
                return Err(SimError::BadProgram(format!(
                    "set A of {a_len} elements exceeds the 32 KiB DMEM0"
                )));
            }
            (a, b, c, DMEM1_BASE + 32 * 1024)
        }
    };
    let c_worst = c_base + 4 * (a_len + b_len);
    if c_worst > limit {
        return Err(SimError::BadProgram(format!(
            "sets of {a_len}+{b_len} elements do not fit the local data memory"
        )));
    }
    Ok(SetLayout {
        a_base,
        a_len,
        b_base,
        b_len,
        c_base,
    })
}

/// Runs a sorted-set operation on the given processor model and returns
/// the result with cycle counts. Inputs must be strictly increasing.
pub fn run_set_op(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
) -> Result<KernelRun, SimError> {
    run_set_op_with(model, kind, a, b, &RunOptions::default())
}

/// [`run_set_op`] with resilience options: protection override, fault
/// injection, watchdog, and a recovery policy that retries or degrades to
/// the scalar baseline when a machine fault interrupts the kernel.
pub fn run_set_op_with(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    opts: &RunOptions,
) -> Result<KernelRun, SimError> {
    validate_set("A", a)?;
    validate_set("B", b)?;
    let layout = set_layout(model, a.len() as u32, b.len() as u32)?;
    // Memoized assembly: the program depends only on (model, kind,
    // layout), so bench sweeps and the retry loop below reuse one image.
    let cached = progcache::get_or_assemble(
        progcache::ProgKey::SetOp {
            model,
            kind,
            layout,
        },
        || {
            let program = match model.wiring() {
                Some(wiring) => {
                    hwset::set_op_program(kind, &wiring, &layout, hwset::DEFAULT_UNROLL)?
                }
                None => scalar::set_op_program(kind, &layout)?,
            };
            preflight_check(&program, model)?;
            Ok(progcache::CachedProgram {
                program: Arc::new(program),
                in_dst: false,
            })
        },
    )?;
    let program = cached.program;
    let program_bytes = program.size_bytes();

    let mut attempt = 0u32;
    let mut faults = FaultCounters::default();
    let mut recovered: Option<MachineFault> = None;
    loop {
        // Each attempt starts from clean hardware and re-placed inputs —
        // the checkpoint here is the kernel boundary itself.
        let mut p = build_processor_with(model, opts.protection)?;
        match opts.profile {
            // Back-compat coupling: an observed run is profiled precisely.
            ProfileMode::Off if opts.observer.is_enabled() => p.enable_profiling(),
            mode => p.set_profile_mode(mode),
        }
        p.load_program_shared(Arc::clone(&program))?;
        p.mem.poke_words(layout.a_base, a)?;
        p.mem.poke_words(layout.b_base, b)?;
        if attempt == 0 {
            if let Some(plan) = &opts.fault_plan {
                p.set_fault_plan(plan.clone());
            }
        }
        p.set_watchdog(opts.effective_watchdog());
        p.set_force_precise(opts.force_precise);
        match p.run(MAX_CYCLES) {
            Ok(stats) => {
                let out_len = if model.has_eis() {
                    p.ar[2] as usize
                } else {
                    ((p.ar[6] - layout.c_base) / 4) as usize
                };
                let result = p.mem.peek_words(layout.c_base, out_len)?;
                faults.merge(&p.fault_counters());
                let profile = p
                    .profile()
                    .zip(p.program())
                    .map(|(pr, prog)| pr.snapshot(prog));
                emit_run_observation(
                    &opts.observer,
                    kind.name(),
                    model,
                    profile.as_ref(),
                    &stats,
                    (a.len() + b.len()) as u64,
                    result.len() as u64,
                    attempt,
                );
                return Ok(KernelRun {
                    result,
                    cycles: stats.cycles,
                    program_bytes,
                    stats,
                    retries: attempt,
                    degraded: false,
                    faults,
                    recovered_fault: recovered,
                    profile,
                });
            }
            Err(SimError::Fault(mf)) => {
                faults.merge(&p.fault_counters());
                emit_fault_observation(&opts.observer, kind.name(), model, &p, &mf, attempt);
                recovered = Some(mf.clone());
                if attempt < opts.policy.max_retries() {
                    attempt += 1;
                    continue;
                }
                if matches!(opts.policy, RecoveryPolicy::DegradeToScalar { .. }) {
                    let fallback = RunOptions {
                        protection: opts.protection,
                        observer: opts.observer.clone(),
                        force_precise: opts.force_precise,
                        profile: opts.profile,
                        ..RunOptions::default()
                    };
                    let mut run = run_set_op_with(scalar_fallback(model), kind, a, b, &fallback)?;
                    run.retries = attempt;
                    run.degraded = true;
                    run.faults.merge(&faults);
                    run.recovered_fault = recovered;
                    return Ok(run);
                }
                return Err(SimError::Fault(mf));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs merge-sort on the given processor model.
///
/// For `DBA_2LSU_EIS` the kernel runs on the single-LSU memory arrangement
/// — the paper notes that "partial loading as well as two load–store units
/// are not beneficial for sorting" and its Table 2 entry for the 2-LSU
/// core is the 1-LSU cycle count at the 2-LSU core frequency.
pub fn run_sort(model: ProcModel, data: &[u32]) -> Result<KernelRun, SimError> {
    run_sort_with(model, data, &RunOptions::default())
}

/// [`run_sort`] with resilience options (see [`run_set_op_with`]).
pub fn run_sort_with(
    model: ProcModel,
    data: &[u32],
    opts: &RunOptions,
) -> Result<KernelRun, SimError> {
    // Pad to a multiple of 4 with sentinels (stripped after sorting).
    let mut padded = data.to_vec();
    let pad = (4 - data.len() % 4) % 4;
    if pad > 0 {
        if data.contains(&SENTINEL) {
            return Err(SimError::BadProgram(
                "sort input whose length is not a multiple of 4 must not contain u32::MAX"
                    .to_string(),
            ));
        }
        padded.resize(data.len() + pad, SENTINEL);
    }
    if padded.is_empty() {
        return Ok(KernelRun {
            result: Vec::new(),
            cycles: 0,
            stats: RunStats {
                cycles: 0,
                halted: true,
                counters: Default::default(),
            },
            program_bytes: 0,
            retries: 0,
            degraded: false,
            faults: FaultCounters::default(),
            recovered_fault: None,
            profile: None,
        });
    }
    let n = padded.len() as u32;

    let exec_model = match model {
        // Sort always uses the 1-LSU arrangement (see doc comment).
        ProcModel::Dba2LsuEis { partial } => ProcModel::Dba1LsuEis { partial },
        ProcModel::Dba2Lsu => ProcModel::Dba1Lsu,
        m => m,
    };
    let (src, dst, limit): (u32, u32, u32) = match exec_model {
        ProcModel::Mini108 => (SYSMEM_BASE, align16(SYSMEM_BASE + 4 * n), u32::MAX),
        _ => (
            DMEM0_BASE,
            align16(DMEM0_BASE + 4 * n),
            DMEM0_BASE + 64 * 1024,
        ),
    };
    if align16(dst + 4 * n) > limit {
        return Err(SimError::BadProgram(format!(
            "{n} elements do not fit the ping-pong sort buffers in local memory"
        )));
    }

    let layout = SortLayout { src, dst, n };
    let cached = progcache::get_or_assemble(
        progcache::ProgKey::Sort {
            model: exec_model,
            layout,
        },
        || {
            let (program, in_dst) = match exec_model.wiring() {
                Some(wiring) => hwsort::merge_sort_program(&wiring, &layout)?,
                None => scalar::merge_sort_program(src, dst, n)?,
            };
            preflight_check(&program, exec_model)?;
            Ok(progcache::CachedProgram {
                program: Arc::new(program),
                in_dst,
            })
        },
    )?;
    let (program, in_dst) = (cached.program, cached.in_dst);
    let program_bytes = program.size_bytes();

    let mut attempt = 0u32;
    let mut faults = FaultCounters::default();
    let mut recovered: Option<MachineFault> = None;
    loop {
        let mut p = build_processor_with(exec_model, opts.protection)?;
        match opts.profile {
            // Back-compat coupling: an observed run is profiled precisely.
            ProfileMode::Off if opts.observer.is_enabled() => p.enable_profiling(),
            mode => p.set_profile_mode(mode),
        }
        p.load_program_shared(Arc::clone(&program))?;
        p.mem.poke_words(src, &padded)?;
        if attempt == 0 {
            if let Some(plan) = &opts.fault_plan {
                p.set_fault_plan(plan.clone());
            }
        }
        p.set_watchdog(opts.effective_watchdog());
        p.set_force_precise(opts.force_precise);
        match p.run(MAX_CYCLES) {
            Ok(stats) => {
                let mut result = p
                    .mem
                    .peek_words(if in_dst { dst } else { src }, n as usize)?;
                result.truncate(data.len()); // strip sentinel padding
                faults.merge(&p.fault_counters());
                let profile = p
                    .profile()
                    .zip(p.program())
                    .map(|(pr, prog)| pr.snapshot(prog));
                emit_run_observation(
                    &opts.observer,
                    "sort",
                    model,
                    profile.as_ref(),
                    &stats,
                    data.len() as u64,
                    result.len() as u64,
                    attempt,
                );
                return Ok(KernelRun {
                    result,
                    cycles: stats.cycles,
                    program_bytes,
                    stats,
                    retries: attempt,
                    degraded: false,
                    faults,
                    recovered_fault: recovered,
                    profile,
                });
            }
            Err(SimError::Fault(mf)) => {
                faults.merge(&p.fault_counters());
                emit_fault_observation(&opts.observer, "sort", model, &p, &mf, attempt);
                recovered = Some(mf.clone());
                if attempt < opts.policy.max_retries() {
                    attempt += 1;
                    continue;
                }
                if matches!(opts.policy, RecoveryPolicy::DegradeToScalar { .. }) {
                    let fallback = RunOptions {
                        protection: opts.protection,
                        observer: opts.observer.clone(),
                        force_precise: opts.force_precise,
                        profile: opts.profile,
                        ..RunOptions::default()
                    };
                    let mut run = run_sort_with(scalar_fallback(model), data, &fallback)?;
                    run.retries = attempt;
                    run.degraded = true;
                    run.faults.merge(&faults);
                    run.recovered_fault = recovered;
                    return Ok(run);
                }
                return Err(SimError::Fault(mf));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: u32) -> Vec<u32> {
        (0..n).map(|i| 2 * i).collect()
    }

    fn thirds(n: u32) -> Vec<u32> {
        (0..n).map(|i| 3 * i).collect()
    }

    #[test]
    fn all_models_agree_on_set_ops() {
        let a = evens(200);
        let b = thirds(150);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let reference = run_set_op(ProcModel::Mini108, kind, &a, &b).unwrap().result;
            for m in ProcModel::all().into_iter().skip(1) {
                let r = run_set_op(m, kind, &a, &b).unwrap();
                assert_eq!(r.result, reference, "{} {kind:?}", m.name());
            }
        }
    }

    #[test]
    fn all_models_agree_on_sort() {
        let mut data: Vec<u32> = (0..500).map(|i: u32| i.wrapping_mul(2654435761)).collect();
        data.truncate(497); // non-multiple-of-4 length
        let mut expect = data.clone();
        expect.sort_unstable();
        for m in ProcModel::all() {
            let r = run_sort(m, &data).unwrap();
            assert_eq!(r.result, expect, "{}", m.name());
        }
    }

    #[test]
    fn eis_is_an_order_of_magnitude_faster_than_scalar() {
        // The paper's headline: EIS throughput is ~10x the scalar local-
        // store core on the same frequency class (Table 2).
        let a = evens(2000);
        let b: Vec<u32> = (0..2000u32).map(|i| 2 * i + (i % 2)).collect();
        let scalar = run_set_op(ProcModel::Dba1Lsu, SetOpKind::Intersect, &a, &b).unwrap();
        let eis = run_set_op(
            ProcModel::Dba1LsuEis { partial: true },
            SetOpKind::Intersect,
            &a,
            &b,
        )
        .unwrap();
        assert_eq!(scalar.result, eis.result);
        let speedup = scalar.cycles as f64 / eis.cycles as f64;
        assert!(
            speedup > 8.0,
            "expected >8x cycle speedup, got {speedup:.1}x"
        );
    }

    #[test]
    fn mini108_is_slower_than_local_store_core() {
        let a = evens(1000);
        let b = thirds(1000);
        let mini = run_set_op(ProcModel::Mini108, SetOpKind::Intersect, &a, &b).unwrap();
        let dba = run_set_op(ProcModel::Dba1Lsu, SetOpKind::Intersect, &a, &b).unwrap();
        assert!(
            mini.cycles as f64 > 1.4 * dba.cycles as f64,
            "cache path must cost more: {} vs {}",
            mini.cycles,
            dba.cycles
        );
    }

    #[test]
    fn unsorted_input_rejected() {
        let e = run_set_op(ProcModel::Dba1Lsu, SetOpKind::Intersect, &[3, 1], &[1]).unwrap_err();
        assert!(matches!(e, SimError::BadProgram(_)));
        let e = run_set_op(ProcModel::Dba1Lsu, SetOpKind::Intersect, &[1, 1], &[1]).unwrap_err();
        assert!(
            matches!(e, SimError::BadProgram(_)),
            "duplicates are not sets"
        );
    }

    #[test]
    fn oversized_input_rejected_for_local_store() {
        let big: Vec<u32> = (0..9000).collect();
        let e = run_set_op(ProcModel::Dba1Lsu, SetOpKind::Union, &big, &big).unwrap_err();
        assert!(matches!(e, SimError::BadProgram(_)));
    }

    #[test]
    fn empty_inputs() {
        let r = run_set_op(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Union,
            &[],
            &[7],
        )
        .unwrap();
        assert_eq!(r.result, vec![7]);
        let r = run_sort(ProcModel::Dba1LsuEis { partial: false }, &[]).unwrap();
        assert!(r.result.is_empty());
    }

    #[test]
    fn retry_recovers_a_parity_trap_bit_identically() {
        use dbx_faults::FaultTarget;
        let a = evens(500);
        let b = thirds(400);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let clean = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
        let opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 17, 5)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            watchdog: None,
            ..Default::default()
        };
        let r = run_set_op_with(model, SetOpKind::Intersect, &a, &b, &opts).unwrap();
        assert_eq!(r.result, clean.result, "retry reproduces the clean result");
        assert_eq!(r.retries, 1, "one faulting attempt, one clean re-run");
        assert!(!r.degraded);
        assert!(r.faults.detected >= 1);
        assert!(
            matches!(
                r.recovered_fault.as_ref().map(|mf| &mf.cause),
                Some(dbx_cpu::FaultCause::ParityError { .. })
            ),
            "recovered fault records the parity trap"
        );
    }

    #[test]
    fn retries_assemble_the_kernel_once() {
        use dbx_faults::FaultTarget;
        // Sizes unique to this test so its cache key is untouched by
        // concurrently running tests.
        let a = evens(257);
        let b = thirds(193);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let key = progcache::ProgKey::SetOp {
            model,
            kind: SetOpKind::Intersect,
            layout: set_layout(model, a.len() as u32, b.len() as u32).unwrap(),
        };
        let opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 17, 5)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            ..Default::default()
        };
        let r = run_set_op_with(model, SetOpKind::Intersect, &a, &b, &opts).unwrap();
        assert!(r.retries >= 1, "the fault plan must actually trip a retry");
        assert_eq!(
            progcache::assemblies_for(&key),
            1,
            "a run with retries assembles its kernel exactly once"
        );
        // A second identical run is a pure cache hit.
        run_set_op_with(model, SetOpKind::Intersect, &a, &b, &opts).unwrap();
        assert_eq!(progcache::assemblies_for(&key), 1);
    }

    #[test]
    fn secded_corrects_in_place_without_retrying() {
        use dbx_faults::FaultTarget;
        let a = evens(500);
        let b = thirds(400);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let clean = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
        let opts = RunOptions {
            protection: Some(ProtectionKind::Secded),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 17, 5)),
            policy: RecoveryPolicy::FailFast,
            watchdog: None,
            ..Default::default()
        };
        let r = run_set_op_with(model, SetOpKind::Intersect, &a, &b, &opts).unwrap();
        assert_eq!(r.result, clean.result);
        assert_eq!(r.retries, 0, "ECC needs no re-run");
        assert!(r.faults.corrected >= 1);
        assert_eq!(r.faults.escaped, 0);
    }

    #[test]
    fn fail_fast_surfaces_the_machine_fault() {
        use dbx_faults::FaultTarget;
        let a = evens(500);
        let b = thirds(400);
        let opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 17, 5)),
            policy: RecoveryPolicy::FailFast,
            watchdog: None,
            ..Default::default()
        };
        let e = run_set_op_with(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Intersect,
            &a,
            &b,
            &opts,
        )
        .unwrap_err();
        assert!(e.is_machine_fault(), "got {e}");
    }

    #[test]
    fn degrade_to_scalar_survives_a_persistently_hung_kernel() {
        let a = evens(300);
        let b = thirds(300);
        let model = ProcModel::Dba1LsuEis { partial: false };
        let clean = run_set_op(model, SetOpKind::Union, &a, &b).unwrap();
        // A 10-cycle watchdog trips every accelerated attempt; the scalar
        // fallback runs unwatched and must still produce the right answer.
        let opts = RunOptions {
            protection: None,
            fault_plan: None,
            policy: RecoveryPolicy::DegradeToScalar { max_retries: 1 },
            watchdog: Some(10),
            ..Default::default()
        };
        let r = run_set_op_with(model, SetOpKind::Union, &a, &b, &opts).unwrap();
        assert_eq!(r.result, clean.result);
        assert!(r.degraded, "result must come from the scalar fallback");
        assert_eq!(r.retries, 1);
        assert!(matches!(
            r.recovered_fault.as_ref().map(|mf| &mf.cause),
            Some(dbx_cpu::FaultCause::Watchdog { budget: 10 })
        ));
    }

    #[test]
    fn effective_watchdog_takes_the_tighter_budget() {
        let mk = |watchdog, deadline| RunOptions {
            watchdog,
            deadline,
            ..Default::default()
        };
        assert_eq!(mk(None, None).effective_watchdog(), None);
        assert_eq!(mk(Some(100), None).effective_watchdog(), Some(100));
        assert_eq!(mk(None, Some(50)).effective_watchdog(), Some(50));
        assert_eq!(mk(Some(100), Some(50)).effective_watchdog(), Some(50));
        assert_eq!(mk(Some(30), Some(50)).effective_watchdog(), Some(30));
    }

    #[test]
    fn an_exhausted_deadline_trips_the_watchdog() {
        // A 10-cycle deadline budget, no explicit watchdog: the kernel
        // must fault with a watchdog trip at the deadline budget.
        let a = evens(300);
        let b = thirds(300);
        let opts = RunOptions {
            deadline: Some(10),
            ..Default::default()
        };
        let err = run_set_op_with(
            ProcModel::Dba1LsuEis { partial: false },
            SetOpKind::Union,
            &a,
            &b,
            &opts,
        )
        .unwrap_err();
        match err {
            SimError::Fault(mf) => {
                assert!(matches!(
                    mf.cause,
                    dbx_cpu::FaultCause::Watchdog { budget: 10 }
                ))
            }
            other => panic!("expected a watchdog fault, got {other:?}"),
        }
    }

    #[test]
    fn sort_retry_recovers_like_set_ops() {
        use dbx_faults::FaultTarget;
        let data: Vec<u32> = (0..600).map(|i: u32| i.wrapping_mul(2654435761)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 41, 11)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            watchdog: None,
            ..Default::default()
        };
        let r = run_sort_with(ProcModel::Dba1LsuEis { partial: true }, &data, &opts).unwrap();
        assert_eq!(r.result, expect);
        assert!(r.retries >= 1);
    }

    #[test]
    fn paper_sized_intersection_runs() {
        // The paper's set-operation experiment size: 2500 elements/set.
        let a: Vec<u32> = (0..2500).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..2500).map(|i| 2 * i + (i % 2)).collect(); // 50% overlap
        let r = run_set_op(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Intersect,
            &a,
            &b,
        )
        .unwrap();
        // Throughput at the paper's 410 MHz should land in the paper's
        // regime (Table 2 reports 1203 M elements/s at 50% selectivity).
        let meps = r.throughput_meps(5000, 410.0);
        assert!(
            (900.0..1700.0).contains(&meps),
            "throughput {meps:.0} M elements/s out of the expected regime"
        );
    }
}
