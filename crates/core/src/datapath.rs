//! Combinational datapaths of the DB instruction-set extension.
//!
//! These functions are the software model of the circuits the paper
//! synthesises: the 4x4 all-to-all comparator array behind `SOP`
//! (Section 4, Figure 8), the sorting network behind the presort
//! load/store instructions, the bitonic merge network behind the
//! merge-sort `SOP`, and the retire/emit logic for intersection, union and
//! difference. They are pure functions so they can be tested exhaustively
//! and property-checked against scalar references, and so the synthesis
//! model can account their structure (comparator counts, mux widths)
//! without duplicating logic.
//!
//! Conventions: windows are front-aligned arrays of up to four elements
//! with a validity count; set inputs must be strictly increasing within
//! each window (RID sets are duplicate-free).

/// The sorted-set operation selected by a `SOP` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    /// Common elements of both sets.
    Intersect,
    /// All distinct elements of both sets.
    Union,
    /// Elements of A not present in B.
    Difference,
}

impl SetOpKind {
    /// Assembly-style short name.
    pub fn short_name(self) -> &'static str {
        match self {
            SetOpKind::Intersect => "isect",
            SetOpKind::Union => "union",
            SetOpKind::Difference => "diff",
        }
    }

    /// Full kernel name, used as the span / benchmark-cell key.
    pub fn name(self) -> &'static str {
        match self {
            SetOpKind::Intersect => "intersect",
            SetOpKind::Union => "union",
            SetOpKind::Difference => "difference",
        }
    }
}

/// Number of comparators in the all-to-all array (4x4) — structural
/// metadata consumed by the synthesis model.
pub const ALL_TO_ALL_COMPARATORS: usize = 16;
/// Comparators in the 4-element sorting network (optimal network).
pub const SORT4_COMPARATORS: usize = 5;
/// Comparators in the 8-element bitonic merge network (3 stages x 4).
pub const MERGE8_COMPARATORS: usize = 12;

/// Result of the 4x4 all-to-all comparison: equality and less-than
/// matrices as bitmasks. Bit `i*4 + j` relates `a[i]` to `b[j]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareMatrix {
    /// Equality bits.
    pub eq: u16,
    /// `a[i] < b[j]` bits.
    pub lt: u16,
}

/// Performs the all-to-all comparison of two 4-element windows.
/// Invalid lanes (index >= count) must be pre-filled with the sentinel by
/// the caller; the matrix covers all 16 pairs regardless.
#[allow(clippy::needless_range_loop)] // index form mirrors the comparator grid
#[inline]
pub fn all_to_all(a: &[u32; 4], b: &[u32; 4]) -> CompareMatrix {
    let mut eq = 0u16;
    let mut lt = 0u16;
    for i in 0..4 {
        for j in 0..4 {
            let bit = 1u16 << (i * 4 + j);
            if a[i] == b[j] {
                eq |= bit;
            }
            if a[i] < b[j] {
                lt |= bit;
            }
        }
    }
    CompareMatrix { eq, lt }
}

/// Sorts four values with the optimal 5-comparator sorting network
/// (the circuit behind the presort load instruction).
#[inline]
pub fn sort4(v: [u32; 4]) -> [u32; 4] {
    #[inline]
    fn cas(v: &mut [u32; 4], i: usize, j: usize) {
        if v[i] > v[j] {
            v.swap(i, j);
        }
    }
    let mut v = v;
    cas(&mut v, 0, 2);
    cas(&mut v, 1, 3);
    cas(&mut v, 0, 1);
    cas(&mut v, 2, 3);
    cas(&mut v, 1, 2);
    v
}

/// Merges two sorted 4-element vectors into a sorted 8-element vector with
/// a bitonic merge network (the circuit behind the merge-sort `SOP`).
#[inline]
pub fn merge8(a: [u32; 4], b: [u32; 4]) -> [u32; 8] {
    // Reverse b to form a bitonic sequence, then three compare-exchange
    // stages with strides 4, 2, 1 (12 comparators total).
    let mut v = [a[0], a[1], a[2], a[3], b[3], b[2], b[1], b[0]];
    for stride in [4usize, 2, 1] {
        let mut out = v;
        for g in (0..8).step_by(stride * 2) {
            for k in 0..stride {
                let (lo, hi) = (g + k, g + k + stride);
                out[lo] = v[lo].min(v[hi]);
                out[hi] = v[lo].max(v[hi]);
            }
        }
        v = out;
    }
    v
}

/// Sorts a slice of power-of-two length with Batcher's odd-even
/// merge-sort network — the width-generalised form of [`sort4`], used by
/// the vector-width tradeoff study (paper Section 2.2: intra-element
/// instructions grow "more than linear (e.g., quadratic)" with width).
pub fn sort_network(v: &mut [u32]) {
    let n = v.len();
    assert!(
        n.is_power_of_two(),
        "sorting network needs a power-of-two width"
    );
    for_each_sort_comparator(n, &mut |i, j| {
        if v[i] > v[j] {
            v.swap(i, j);
        }
    });
}

/// Enumerates the compare-exchange pairs of Batcher's odd-even merge-sort
/// network for `n` inputs (Sedgewick's formulation). Shared by the
/// executing network and the comparator counter so the synthesis model
/// prices exactly the circuit that runs.
pub fn for_each_sort_comparator(n: usize, f: &mut impl FnMut(usize, usize)) {
    fn sort_rec(lo: usize, n: usize, f: &mut impl FnMut(usize, usize)) {
        if n > 1 {
            let m = n / 2;
            sort_rec(lo, m, f);
            sort_rec(lo + m, m, f);
            merge_rec(lo, n, 1, f);
        }
    }
    fn merge_rec(lo: usize, n: usize, r: usize, f: &mut impl FnMut(usize, usize)) {
        let m = r * 2;
        if m < n {
            merge_rec(lo, n, m, f);
            merge_rec(lo + r, n - r, m, f);
            let mut i = lo + r;
            while i + r < lo + n {
                f(i, i + r);
                i += m;
            }
        } else {
            f(lo, lo + r);
        }
    }
    sort_rec(0, n, f);
}

/// Comparator count of Batcher's odd-even merge-sort network for width
/// `w` (power of two) — structural input for the synthesis model.
pub fn sort_network_comparators(w: usize) -> usize {
    assert!(w.is_power_of_two());
    let mut count = 0;
    for_each_sort_comparator(w, &mut |_, _| count += 1);
    count
}

/// Merges two sorted slices of equal power-of-two length with a bitonic
/// merge network (width-generalised [`merge8`]).
pub fn bitonic_merge_n(a: &[u32], b: &[u32]) -> Vec<u32> {
    assert_eq!(a.len(), b.len());
    let w = a.len();
    assert!(w.is_power_of_two() && w >= 1);
    let mut v: Vec<u32> = Vec::with_capacity(2 * w);
    v.extend_from_slice(a);
    v.extend(b.iter().rev());
    let mut stride = w;
    while stride >= 1 {
        for g in (0..2 * w).step_by(stride * 2) {
            for k in 0..stride {
                let (lo, hi) = (g + k, g + k + stride);
                if v[lo] > v[hi] {
                    v.swap(lo, hi);
                }
            }
        }
        stride /= 2;
    }
    v
}

/// Comparator count of the `2w`-element bitonic merge network.
pub fn bitonic_merge_comparators(w: usize) -> usize {
    assert!(w.is_power_of_two());
    // log2(2w) stages of w comparators each.
    let stages = (2 * w).trailing_zeros() as usize;
    stages * w
}

/// Width-generalised retire/emit outcome (see [`SopOutcome`] for the
/// 4-wide instruction's fixed-size form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SopOutcomeN {
    /// Elements retired from window A.
    pub consume_a: usize,
    /// Elements retired from window B.
    pub consume_b: usize,
    /// Values emitted, sorted (<= 2w for union).
    pub emit: Vec<u32>,
    /// Updated emitted flags for window A (pre-shift positions).
    pub emitted_a: Vec<bool>,
    /// Updated emitted flags for window B.
    pub emitted_b: Vec<bool>,
}

/// Width-generalised sorted-set `SOP` over windows of arbitrary width.
/// `wa[..va]` / `wb[..vb]` are the valid strictly-increasing lanes.
#[allow(clippy::too_many_arguments)] // mirrors the instruction's operand list
pub fn sop_set_n(
    kind: SetOpKind,
    wa: &[u32],
    va: usize,
    emitted_a: &[bool],
    wb: &[u32],
    vb: usize,
    emitted_b: &[bool],
    partial: bool,
) -> SopOutcomeN {
    debug_assert!(va >= 1 && va <= wa.len() && vb >= 1 && vb <= wb.len());
    let amax = wa[va - 1];
    let bmax = wb[vb - 1];
    let boundary = amax.min(bmax);

    let cand = |w: &[u32], v: usize, e: &[bool]| -> Vec<bool> {
        (0..w.len())
            .map(|i| i < v && w[i] <= boundary && !e[i])
            .collect()
    };
    let cand_a = cand(wa, va, emitted_a);
    let cand_b = cand(wb, vb, emitted_b);
    let match_in = |x: u32, w: &[u32], v: usize| w[..v].contains(&x);

    let mut emit = Vec::new();
    match kind {
        SetOpKind::Intersect => {
            for i in 0..va {
                if cand_a[i] && match_in(wa[i], wb, vb) {
                    emit.push(wa[i]);
                }
            }
        }
        SetOpKind::Difference => {
            for i in 0..va {
                if cand_a[i] && !match_in(wa[i], wb, vb) {
                    emit.push(wa[i]);
                }
            }
        }
        SetOpKind::Union => {
            let (mut i, mut j) = (0, 0);
            loop {
                while i < va && !cand_a[i] {
                    i += 1;
                }
                while j < vb && !cand_b[j] {
                    j += 1;
                }
                match (i < va, j < vb) {
                    (false, false) => break,
                    (true, false) => {
                        emit.push(wa[i]);
                        i += 1;
                    }
                    (false, true) => {
                        emit.push(wb[j]);
                        j += 1;
                    }
                    (true, true) => match wa[i].cmp(&wb[j]) {
                        std::cmp::Ordering::Less => {
                            emit.push(wa[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            emit.push(wb[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            emit.push(wa[i]);
                            i += 1;
                            j += 1;
                        }
                    },
                }
            }
        }
    }

    let (consume_a, consume_b) = if partial {
        (
            (0..va).take_while(|&i| wa[i] <= bmax).count(),
            (0..vb).take_while(|&j| wb[j] <= amax).count(),
        )
    } else {
        match amax.cmp(&bmax) {
            std::cmp::Ordering::Equal => (va, vb),
            std::cmp::Ordering::Less => (va, 0),
            std::cmp::Ordering::Greater => (0, vb),
        }
    };

    let mut out_ea = emitted_a.to_vec();
    let mut out_eb = emitted_b.to_vec();
    for i in 0..va {
        out_ea[i] |= cand_a[i];
    }
    for j in 0..vb {
        out_eb[j] |= cand_b[j];
    }
    SopOutcomeN {
        consume_a,
        consume_b,
        emit,
        emitted_a: out_ea,
        emitted_b: out_eb,
    }
}

/// Window retire/emit decision for one `SOP` execution on sorted-set
/// windows. All inputs/outputs are in terms of front-aligned windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SopOutcome {
    /// Elements retired (consumed) from window A.
    pub consume_a: usize,
    /// Elements retired from window B.
    pub consume_b: usize,
    /// Values emitted to the Result states, in sorted order (<= 8).
    pub emit: Vec<u32>,
    /// Updated emitted flags for the *unretired* suffix of window A, still
    /// indexed by the pre-shift window positions.
    pub emitted_a: [bool; 4],
    /// Same for window B.
    pub emitted_b: [bool; 4],
}

/// Evaluates one sorted-set `SOP` over two windows.
///
/// * `wa`, `va`: window A values (front-aligned) and its valid count;
///   lanes `>= va` are ignored. Values must be strictly increasing.
/// * `emitted_a` marks A lanes already emitted by a previous `SOP` in
///   full-window-retirement mode.
/// * `partial`: with partial loading the windows retire by the comparison
///   boundary (`LD_P` refills them); without it only fully-covered windows
///   retire (the window whose max is the boundary).
///
/// Both windows must be non-empty; the instruction no-ops otherwise (the
/// caller checks).
#[allow(clippy::too_many_arguments)] // mirrors the instruction's operand list
pub fn sop_set(
    kind: SetOpKind,
    wa: &[u32; 4],
    va: usize,
    emitted_a: &[bool; 4],
    wb: &[u32; 4],
    vb: usize,
    emitted_b: &[bool; 4],
    partial: bool,
) -> SopOutcome {
    let mut out = SopOutcome {
        consume_a: 0,
        consume_b: 0,
        emit: Vec::with_capacity(8),
        emitted_a: [false; 4],
        emitted_b: [false; 4],
    };
    sop_set_into(
        kind, wa, va, emitted_a, wb, vb, emitted_b, partial, &mut out,
    );
    out
}

/// [`sop_set`] writing into caller-owned storage: `out.emit` is cleared
/// and refilled (its capacity is reused), every other field overwritten.
/// This is the per-cycle form — the simulated datapath evaluates one
/// `SOP` per cycle and must not hit the allocator to do it.
#[allow(clippy::too_many_arguments)] // mirrors the instruction's operand list
pub fn sop_set_into(
    kind: SetOpKind,
    wa: &[u32; 4],
    va: usize,
    emitted_a: &[bool; 4],
    wb: &[u32; 4],
    vb: usize,
    emitted_b: &[bool; 4],
    partial: bool,
    out: &mut SopOutcome,
) {
    debug_assert!((1..=4).contains(&va) && (1..=4).contains(&vb));
    let amax = wa[va - 1];
    let bmax = wb[vb - 1];
    let boundary = amax.min(bmax);
    let m = all_to_all(wa, wb);

    // Candidate lanes: valid, <= boundary, not yet emitted.
    let mut cand_a = [false; 4];
    let mut cand_b = [false; 4];
    for i in 0..va {
        cand_a[i] = wa[i] <= boundary && !emitted_a[i];
    }
    for j in 0..vb {
        cand_b[j] = wb[j] <= boundary && !emitted_b[j];
    }
    // Match flags against *valid* lanes of the other window.
    let mut match_a = [false; 4];
    let mut match_b = [false; 4];
    #[allow(clippy::needless_range_loop)] // index form mirrors the eq matrix
    for i in 0..va {
        for j in 0..vb {
            if m.eq & (1 << (i * 4 + j)) != 0 {
                match_a[i] = true;
                match_b[j] = true;
            }
        }
    }

    // Emission: a sorted merge of the candidate lanes of both windows.
    // Candidates within each window are increasing, so a two-pointer merge
    // models the shuffle network.
    let emit = &mut out.emit;
    emit.clear();
    match kind {
        SetOpKind::Intersect => {
            for i in 0..va {
                if cand_a[i] && match_a[i] {
                    emit.push(wa[i]);
                }
            }
        }
        SetOpKind::Difference => {
            for i in 0..va {
                if cand_a[i] && !match_a[i] {
                    emit.push(wa[i]);
                }
            }
        }
        SetOpKind::Union => {
            let mut i = 0;
            let mut j = 0;
            loop {
                while i < va && !cand_a[i] {
                    i += 1;
                }
                while j < vb && !cand_b[j] {
                    j += 1;
                }
                match (i < va, j < vb) {
                    (false, false) => break,
                    (true, false) => {
                        emit.push(wa[i]);
                        i += 1;
                    }
                    (false, true) => {
                        emit.push(wb[j]);
                        j += 1;
                    }
                    (true, true) => {
                        if wa[i] < wb[j] {
                            emit.push(wa[i]);
                            i += 1;
                        } else if wb[j] < wa[i] {
                            emit.push(wb[j]);
                            j += 1;
                        } else {
                            emit.push(wa[i]); // equal pair emitted once
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    // Retirement.
    let (consume_a, consume_b) = if partial {
        // Retire everything <= the other window's max (boundary-based).
        let ca = (0..va).take_while(|&i| wa[i] <= bmax).count();
        let cb = (0..vb).take_while(|&j| wb[j] <= amax).count();
        (ca, cb)
    } else {
        // Full windows only: the window owning the boundary retires.
        match amax.cmp(&bmax) {
            std::cmp::Ordering::Equal => (va, vb),
            std::cmp::Ordering::Less => (va, 0),
            std::cmp::Ordering::Greater => (0, vb),
        }
    };

    // Updated emitted flags (pre-shift positions). Retired lanes keep
    // their flags; LD_P discards them on shift.
    let mut out_ea = *emitted_a;
    let mut out_eb = *emitted_b;
    for i in 0..va {
        if cand_a[i] {
            out_ea[i] = true;
        }
    }
    for j in 0..vb {
        if cand_b[j] {
            out_eb[j] = true;
        }
    }

    out.consume_a = consume_a;
    out.consume_b = consume_b;
    out.emitted_a = out_ea;
    out.emitted_b = out_eb;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_flags_pairs() {
        let m = all_to_all(&[1, 2, 3, 4], &[2, 4, 6, 8]);
        // a[1] == b[0] -> bit 1*4+0; a[3] == b[1] -> bit 3*4+1.
        assert_ne!(m.eq & (1 << 4), 0);
        assert_ne!(m.eq & (1 << 13), 0);
        assert_eq!(m.eq.count_ones(), 2);
        // a[0]=1 < all b -> bits 0..4 set in lt.
        assert_eq!(m.lt & 0xf, 0xf);
    }

    #[test]
    fn sort4_all_permutations() {
        // Exhaustive over all 24 permutations plus duplicates.
        let base = [3u32, 1, 4, 1];
        let mut perms = vec![];
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        if a != b && a != c && a != d && b != c && b != d && c != d {
                            perms.push([base[a], base[b], base[c], base[d]]);
                        }
                    }
                }
            }
        }
        for p in perms {
            let s = sort4(p);
            let mut expect = p;
            expect.sort_unstable();
            assert_eq!(s, expect, "input {p:?}");
        }
    }

    #[test]
    fn merge8_is_a_correct_merge() {
        let cases = [
            ([1, 3, 5, 7], [2, 4, 6, 8]),
            ([1, 2, 3, 4], [5, 6, 7, 8]),
            ([5, 6, 7, 8], [1, 2, 3, 4]),
            ([1, 1, 1, 1], [1, 1, 1, 1]),
            ([0, u32::MAX, u32::MAX, u32::MAX], [0, 0, 1, 2]),
        ];
        for (a, b) in cases {
            let got = merge8(a, b);
            let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            assert_eq!(got.to_vec(), expect, "a={a:?} b={b:?}");
        }
    }

    fn no_flags() -> [bool; 4] {
        [false; 4]
    }

    #[test]
    fn intersect_partial_emits_matches_and_retires_by_boundary() {
        // A: 1 3 5 9, B: 3 4 5 6 -> matches {3,5}; amax=9 > bmax=6.
        let out = sop_set(
            SetOpKind::Intersect,
            &[1, 3, 5, 9],
            4,
            &no_flags(),
            &[3, 4, 5, 6],
            4,
            &no_flags(),
            true,
        );
        assert_eq!(out.emit, vec![3, 5]);
        assert_eq!(out.consume_a, 3, "1,3,5 <= bmax 6");
        assert_eq!(out.consume_b, 4, "all of B <= amax 9");
    }

    #[test]
    fn intersect_nonpartial_retires_full_window_only() {
        let out = sop_set(
            SetOpKind::Intersect,
            &[1, 3, 5, 9],
            4,
            &no_flags(),
            &[3, 4, 5, 6],
            4,
            &no_flags(),
            false,
        );
        assert_eq!(out.emit, vec![3, 5]);
        assert_eq!(
            (out.consume_a, out.consume_b),
            (0, 4),
            "B owns the boundary"
        );
        // A lanes 3 and 5 are now marked emitted for the next SOP.
        assert_eq!(out.emitted_a, [true, true, true, false]);
    }

    #[test]
    fn nonpartial_emitted_flags_prevent_duplicates() {
        // Continue the previous scenario: B window reloads to 7 8 10 11.
        let out = sop_set(
            SetOpKind::Intersect,
            &[1, 3, 5, 9],
            4,
            &[true, true, true, false],
            &[7, 8, 10, 11],
            4,
            &no_flags(),
            true,
        );
        // 9 matches nothing; no duplicates of 3/5.
        assert_eq!(out.emit, Vec::<u32>::new());
    }

    #[test]
    fn equal_maxes_retire_both_windows() {
        let out = sop_set(
            SetOpKind::Intersect,
            &[1, 2, 3, 8],
            4,
            &no_flags(),
            &[2, 5, 6, 8],
            4,
            &no_flags(),
            false,
        );
        assert_eq!(out.emit, vec![2, 8]);
        assert_eq!((out.consume_a, out.consume_b), (4, 4));
    }

    #[test]
    fn union_merges_candidates_once() {
        let out = sop_set(
            SetOpKind::Union,
            &[1, 3, 5, 9],
            4,
            &no_flags(),
            &[3, 4, 5, 6],
            4,
            &no_flags(),
            true,
        );
        // boundary = 6: candidates A {1,3,5}, B {3,4,5,6}.
        assert_eq!(out.emit, vec![1, 3, 4, 5, 6]);
    }

    #[test]
    fn union_can_emit_eight() {
        let out = sop_set(
            SetOpKind::Union,
            &[1, 2, 3, 4],
            4,
            &no_flags(),
            &[5, 6, 7, 4],
            3, // careful: window is 5,6,7 valid
            &no_flags(),
            true,
        );
        // boundary = min(4,7)=4: candidates A all, B none.
        assert_eq!(out.emit, vec![1, 2, 3, 4]);

        let out = sop_set(
            SetOpKind::Union,
            &[1, 3, 5, 7],
            4,
            &no_flags(),
            &[2, 4, 6, 7],
            4,
            &no_flags(),
            true,
        );
        assert_eq!(out.emit, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!((out.consume_a, out.consume_b), (4, 4));
    }

    #[test]
    fn difference_emits_unmatched_a() {
        let out = sop_set(
            SetOpKind::Difference,
            &[1, 3, 5, 9],
            4,
            &no_flags(),
            &[3, 4, 5, 6],
            4,
            &no_flags(),
            true,
        );
        assert_eq!(out.emit, vec![1], "3 and 5 match; 9 beyond boundary");
        assert_eq!(out.consume_a, 3);
    }

    #[test]
    fn partial_windows_from_exhausted_tails() {
        // B has only 2 valid lanes (tail of the set).
        let out = sop_set(
            SetOpKind::Intersect,
            &[10, 20, 30, 40],
            4,
            &no_flags(),
            &[20, 25, 0, 0],
            2,
            &no_flags(),
            true,
        );
        assert_eq!(out.emit, vec![20]);
        assert_eq!(out.consume_a, 2, "10, 20 <= bmax 25");
        assert_eq!(out.consume_b, 2, "both <= amax 40");
    }

    #[test]
    fn sort_network_sorts_all_widths() {
        for w in [1usize, 2, 4, 8, 16, 32] {
            let mut v: Vec<u32> = (0..w as u32)
                .map(|i| i.wrapping_mul(2654435761).rotate_left(3))
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_network(&mut v);
            assert_eq!(v, expect, "w={w}");
        }
        // Width 4 must agree with the hand-optimised sort4 network.
        let mut v = vec![9u32, 1, 7, 3];
        sort_network(&mut v);
        assert_eq!(v, sort4([9, 1, 7, 3]).to_vec());
    }

    #[test]
    fn sort_network_comparator_counts() {
        // Batcher odd-even merge-sort counts: 1, 3, 9, 19, 63 for
        // n = 2, 4, 8, 16, wait 16 is 63.
        assert_eq!(sort_network_comparators(2), 1);
        assert_eq!(sort_network_comparators(4), 5);
        assert_eq!(sort_network_comparators(8), 19);
        assert_eq!(sort_network_comparators(16), 63);
        // Quadratic-ish growth: the Section 2.2 tradeoff.
        assert!(sort_network_comparators(16) > 3 * sort_network_comparators(8));
    }

    #[test]
    fn bitonic_merge_n_matches_std_for_all_widths() {
        for w in [1usize, 2, 4, 8, 16] {
            let a: Vec<u32> = (0..w as u32).map(|i| 3 * i).collect();
            let b: Vec<u32> = (0..w as u32).map(|i| 2 * i + 1).collect();
            let got = bitonic_merge_n(&a, &b);
            let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "w={w}");
        }
        assert_eq!(
            bitonic_merge_comparators(4),
            12,
            "matches MERGE8_COMPARATORS"
        );
    }

    #[test]
    fn sop_set_n_at_width_4_equals_the_instruction() {
        let wa = [1u32, 3, 5, 9];
        let wb = [3u32, 4, 5, 6];
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            for partial in [false, true] {
                let fixed = sop_set(kind, &wa, 4, &[false; 4], &wb, 4, &[false; 4], partial);
                let gen = sop_set_n(kind, &wa, 4, &[false; 4], &wb, 4, &[false; 4], partial);
                assert_eq!(fixed.emit, gen.emit, "{kind:?} {partial}");
                assert_eq!(fixed.consume_a, gen.consume_a);
                assert_eq!(fixed.consume_b, gen.consume_b);
                assert_eq!(fixed.emitted_a.to_vec(), gen.emitted_a);
            }
        }
    }

    #[test]
    fn sop_set_n_wider_windows_consume_more_per_step() {
        // The whole point of wider vectors: one step retires more.
        let a: Vec<u32> = (0..16).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..16).map(|i| 2 * i + 1).collect();
        let o4 = sop_set_n(
            SetOpKind::Union,
            &a[..4],
            4,
            &[false; 4],
            &b[..4],
            4,
            &[false; 4],
            true,
        );
        let o16 = sop_set_n(
            SetOpKind::Union,
            &a,
            16,
            &[false; 16],
            &b,
            16,
            &[false; 16],
            true,
        );
        assert!(o16.consume_a + o16.consume_b > 3 * (o4.consume_a + o4.consume_b));
        assert!(o16.emit.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sop_against_scalar_reference_randomised() {
        // Drive a full two-set consumption loop through sop_set and compare
        // with scalar set operations. This is the datapath-level version of
        // the kernel property tests.
        let a: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        let b: Vec<u32> = (0..64).map(|i| i * 5 + 1).collect();
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            for partial in [false, true] {
                let got = run_windowed(kind, &a, &b, partial);
                let expect = scalar_reference(kind, &a, &b);
                assert_eq!(got, expect, "{kind:?} partial={partial}");
            }
        }
    }

    /// Minimal window-driving harness over `sop_set` for datapath tests.
    fn run_windowed(kind: SetOpKind, a: &[u32], b: &[u32], partial: bool) -> Vec<u32> {
        let mut out = Vec::new();
        let (mut pa, mut pb) = (0usize, 0usize);
        let mut ea = [false; 4];
        let mut eb = [false; 4];
        loop {
            let va = (a.len() - pa).min(4);
            let vb = (b.len() - pb).min(4);
            if va == 0 || vb == 0 {
                break;
            }
            let mut wa = [u32::MAX; 4];
            let mut wb = [u32::MAX; 4];
            wa[..va].copy_from_slice(&a[pa..pa + va]);
            wb[..vb].copy_from_slice(&b[pb..pb + vb]);
            let o = sop_set(kind, &wa, va, &ea, &wb, vb, &eb, partial);
            out.extend_from_slice(&o.emit);
            pa += o.consume_a;
            pb += o.consume_b;
            // Shift emitted flags like LD_P shifts the windows.
            let mut nea = [false; 4];
            let mut neb = [false; 4];
            for i in o.consume_a..va {
                nea[i - o.consume_a] = o.emitted_a[i];
            }
            for j in o.consume_b..vb {
                neb[j - o.consume_b] = o.emitted_b[j];
            }
            ea = nea;
            eb = neb;
            assert!(o.consume_a > 0 || o.consume_b > 0, "progress guaranteed");
        }
        // Epilogue: remaining elements.
        match kind {
            SetOpKind::Intersect => {}
            SetOpKind::Difference => {
                for i in pa..a.len() {
                    let w = a[i];
                    let already = (0..4).any(|k| pa + k < a.len() && ea[k] && a[pa + k] == w);
                    if !already {
                        out.push(w);
                    }
                }
            }
            SetOpKind::Union => {
                for (p, set, e) in [(pa, a, &ea), (pb, b, &eb)] {
                    for (k, &v) in set[p..].iter().enumerate() {
                        if k < 4 && e[k] {
                            continue;
                        }
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    fn scalar_reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
        let bs: std::collections::BTreeSet<u32> = b.iter().copied().collect();
        match kind {
            SetOpKind::Intersect => a.iter().copied().filter(|x| bs.contains(x)).collect(),
            SetOpKind::Difference => a.iter().copied().filter(|x| !bs.contains(x)).collect(),
            SetOpKind::Union => {
                let mut s: std::collections::BTreeSet<u32> = a.iter().copied().collect();
                s.extend(b.iter().copied());
                s.into_iter().collect()
            }
        }
    }
}
