//! Kernel programs: the database primitives expressed as programs for the
//! simulated processor.
//!
//! * [`scalar`] — the plain C-style algorithms of the paper's Figures 2
//!   and 3, hand-compiled to the base ISA. These run on the `108Mini` and
//!   `DBA_1LSU` baselines.
//! * [`hwset`] — sorted-set intersection/union/difference using the DB
//!   instruction-set extension (the paper's Figure 11 core loop).
//! * [`hwsort`] — merge-sort using the presort and merge instructions
//!   (the paper's Figure 12 core loop).

pub mod hwset;
pub mod hwsort;
pub mod scalar;

use dbx_cpu::isa::{ExtOp, Instr, OpArgs};
use dbx_cpu::Reg;

/// Placement of the two input sets and the result sequence in data memory.
///
/// All base addresses must be 16-byte aligned (one 128-bit beat); lengths
/// are in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetLayout {
    /// Base address of set A.
    pub a_base: u32,
    /// Elements in set A.
    pub a_len: u32,
    /// Base address of set B.
    pub b_base: u32,
    /// Elements in set B.
    pub b_len: u32,
    /// Base address of the result sequence.
    pub c_base: u32,
}

impl SetLayout {
    /// One-past-the-end address of set A.
    pub fn a_end(&self) -> u32 {
        self.a_base + 4 * self.a_len
    }

    /// One-past-the-end address of set B.
    pub fn b_end(&self) -> u32 {
        self.b_base + 4 * self.b_len
    }
}

/// Placement of the sort buffers (ping/pong) in data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortLayout {
    /// Base address of the input buffer.
    pub src: u32,
    /// Base address of the scratch buffer (same size).
    pub dst: u32,
    /// Elements to sort (must be a positive multiple of 4).
    pub n: u32,
}

/// An extension op with no register operands.
pub(crate) fn e(op: u16) -> Instr {
    Instr::Ext(ExtOp {
        op,
        args: OpArgs::default(),
    })
}

/// An extension op writing to address register `r`.
pub(crate) fn e_r(op: u16, r: Reg) -> Instr {
    Instr::Ext(ExtOp {
        op,
        args: OpArgs {
            r: r.0,
            s: 0,
            imm: 0,
        },
    })
}

/// An extension op reading address register `s`.
pub(crate) fn e_s(op: u16, s: Reg) -> Instr {
    Instr::Ext(ExtOp {
        op,
        args: OpArgs {
            r: 0,
            s: s.0,
            imm: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_end_addresses() {
        let l = SetLayout {
            a_base: 0x100,
            a_len: 4,
            b_base: 0x200,
            b_len: 8,
            c_base: 0x300,
        };
        assert_eq!(l.a_end(), 0x110);
        assert_eq!(l.b_end(), 0x220);
    }
}
