//! Scalar baseline kernels — the paper's Figures 2 and 3 hand-compiled to
//! the base instruction set.
//!
//! These are the programs the `108Mini` and `DBA_1LSU` configurations run:
//! plain merge-style loops whose dominant cost is the "hardly predictable
//! branch" (Section 2.3) plus, on the cached baseline, memory latency.
//! Register convention used throughout:
//!
//! | reg | role |
//! |---|---|
//! | a2 | `pos_a` pointer |
//! | a3 | `pos_b` pointer |
//! | a4 | end of A |
//! | a5 | end of B |
//! | a6 | output pointer |
//! | a7/a8 | current elements |
//!
//! Each program halts with the output pointer in `a6`; callers derive the
//! result length as `(a6 - c_base) / 4`.

use super::SetLayout;
use crate::datapath::SetOpKind;
use dbx_cpu::isa::regs::*;
use dbx_cpu::{Program, ProgramBuilder, SimError};

/// Builds the scalar sorted-set program for `kind` over `layout`.
pub fn set_op_program(kind: SetOpKind, layout: &SetLayout) -> Result<Program, SimError> {
    let mut b = ProgramBuilder::new();
    b.label("init");
    b.movi(A2, layout.a_base as i32);
    b.movi(A3, layout.b_base as i32);
    b.movi(A4, layout.a_end() as i32);
    b.movi(A5, layout.b_end() as i32);
    b.movi(A6, layout.c_base as i32);

    b.label("core_loop");
    match kind {
        SetOpKind::Intersect => {
            b.bgeu(A2, A4, "done");
            b.bgeu(A3, A5, "done");
            b.l32i(A7, A2, 0);
            b.l32i(A8, A3, 0);
            b.beq(A7, A8, "equal");
            b.bltu(A7, A8, "a_smaller");
            b.addi(A3, A3, 4);
            b.j("core_loop");
            b.label("a_smaller");
            b.addi(A2, A2, 4);
            b.j("core_loop");
            b.label("equal");
            b.s32i(A7, A6, 0);
            b.addi(A6, A6, 4);
            b.addi(A2, A2, 4);
            b.addi(A3, A3, 4);
            b.j("core_loop");
        }
        SetOpKind::Difference => {
            b.bgeu(A2, A4, "done");
            b.bgeu(A3, A5, "rest_a");
            b.l32i(A7, A2, 0);
            b.l32i(A8, A3, 0);
            b.beq(A7, A8, "equal");
            b.bltu(A7, A8, "emit_a");
            b.addi(A3, A3, 4);
            b.j("core_loop");
            b.label("emit_a");
            b.s32i(A7, A6, 0);
            b.addi(A6, A6, 4);
            b.addi(A2, A2, 4);
            b.j("core_loop");
            b.label("equal");
            b.addi(A2, A2, 4);
            b.addi(A3, A3, 4);
            b.j("core_loop");
            b.label("rest_a");
            b.bgeu(A2, A4, "done");
            b.l32i(A7, A2, 0);
            b.s32i(A7, A6, 0);
            b.addi(A2, A2, 4);
            b.addi(A6, A6, 4);
            b.j("rest_a");
        }
        SetOpKind::Union => {
            b.bgeu(A2, A4, "rest_b");
            b.bgeu(A3, A5, "rest_a");
            b.l32i(A7, A2, 0);
            b.l32i(A8, A3, 0);
            b.beq(A7, A8, "equal");
            b.bltu(A7, A8, "emit_a");
            b.s32i(A8, A6, 0);
            b.addi(A6, A6, 4);
            b.addi(A3, A3, 4);
            b.j("core_loop");
            b.label("emit_a");
            b.s32i(A7, A6, 0);
            b.addi(A6, A6, 4);
            b.addi(A2, A2, 4);
            b.j("core_loop");
            b.label("equal");
            b.s32i(A7, A6, 0);
            b.addi(A6, A6, 4);
            b.addi(A2, A2, 4);
            b.addi(A3, A3, 4);
            b.j("core_loop");
            b.label("rest_a");
            b.bgeu(A2, A4, "done");
            b.l32i(A7, A2, 0);
            b.s32i(A7, A6, 0);
            b.addi(A2, A2, 4);
            b.addi(A6, A6, 4);
            b.j("rest_a");
            b.label("rest_b");
            b.bgeu(A3, A5, "done");
            b.l32i(A8, A3, 0);
            b.s32i(A8, A6, 0);
            b.addi(A3, A3, 4);
            b.addi(A6, A6, 4);
            b.j("rest_b");
        }
    }
    b.label("done");
    b.halt();
    b.build()
}

/// Builds the scalar bottom-up merge-sort (Section 2.3, Figure 2's merge
/// inside a width-doubling driver). `src`/`dst` are equally-sized ping-pong
/// buffers of `n` elements; returns the program and whether the sorted
/// result ends up in the `dst` buffer.
pub fn merge_sort_program(src: u32, dst: u32, n: u32) -> Result<(Program, bool), SimError> {
    let mut b = ProgramBuilder::new();
    // a1 = width in bytes, a13 = total bytes, a14 = src, a15 = dst.
    b.label("init");
    b.movi(A14, src as i32);
    b.movi(A15, dst as i32);
    b.movi(A13, (n * 4) as i32);
    b.movi(A1, 4);

    b.label("pass_loop");
    b.bgeu(A1, A13, "done_passes");
    b.movi(A2, 0); // l (byte offset)

    b.label("pair_loop");
    b.bgeu(A2, A13, "pass_end");
    b.add(A3, A2, A1);
    b.minu(A3, A3, A13); // m
    b.add(A4, A3, A1);
    b.minu(A4, A4, A13); // r
    b.add(A5, A14, A2); // i = src + l
    b.add(A6, A14, A3); // j = src + m
    b.add(A7, A15, A2); // out = dst + l
    b.add(A8, A14, A3); // i end
    b.add(A9, A14, A4); // j end

    b.label("merge_loop");
    b.bgeu(A5, A8, "copy_j");
    b.bgeu(A6, A9, "copy_i");
    b.l32i(A10, A5, 0);
    b.l32i(A11, A6, 0);
    b.bltu(A11, A10, "take_j");
    b.s32i(A10, A7, 0);
    b.addi(A5, A5, 4);
    b.addi(A7, A7, 4);
    b.j("merge_loop");
    b.label("take_j");
    b.s32i(A11, A7, 0);
    b.addi(A6, A6, 4);
    b.addi(A7, A7, 4);
    b.j("merge_loop");

    b.label("copy_i");
    b.bgeu(A5, A8, "pair_next");
    b.l32i(A10, A5, 0);
    b.s32i(A10, A7, 0);
    b.addi(A5, A5, 4);
    b.addi(A7, A7, 4);
    b.j("copy_i");

    b.label("copy_j");
    b.bgeu(A6, A9, "pair_next");
    b.l32i(A10, A6, 0);
    b.s32i(A10, A7, 0);
    b.addi(A6, A6, 4);
    b.addi(A7, A7, 4);
    b.j("copy_j");

    b.label("pair_next");
    b.slli(A10, A1, 1);
    b.add(A2, A2, A10);
    b.j("pair_loop");

    b.label("pass_end");
    b.mov(A10, A14);
    b.mov(A14, A15);
    b.mov(A15, A10);
    b.slli(A1, A1, 1);
    b.j("pass_loop");

    b.label("done_passes");
    b.halt();

    // Result buffer parity: one swap per executed pass.
    let mut passes = 0u32;
    let mut w = 4u64;
    while w < (n as u64) * 4 {
        passes += 1;
        w *= 2;
    }
    Ok((b.build()?, passes % 2 == 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbx_cpu::{CpuConfig, Processor, DMEM0_BASE};

    fn run_set(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
        let layout = SetLayout {
            a_base: DMEM0_BASE,
            a_len: a.len() as u32,
            b_base: DMEM0_BASE + 0x2000,
            b_len: b.len() as u32,
            c_base: DMEM0_BASE + 0x4000,
        };
        let prog = set_op_program(kind, &layout).unwrap();
        let mut p = Processor::new(CpuConfig::local_store_core(1, 64)).unwrap();
        p.load_program(prog).unwrap();
        p.mem.poke_words(layout.a_base, a).unwrap();
        p.mem.poke_words(layout.b_base, b).unwrap();
        p.run(10_000_000).unwrap();
        let out_len = (p.ar[6] - layout.c_base) / 4;
        p.mem.peek_words(layout.c_base, out_len as usize).unwrap()
    }

    #[test]
    fn scalar_intersect_matches_reference() {
        let a = [1u32, 3, 5, 7, 9, 11];
        let b = [2u32, 3, 4, 7, 10, 11, 12];
        assert_eq!(run_set(SetOpKind::Intersect, &a, &b), vec![3, 7, 11]);
    }

    #[test]
    fn scalar_difference_matches_reference() {
        let a = [1u32, 3, 5, 7, 9, 11];
        let b = [2u32, 3, 4, 7, 10, 12];
        assert_eq!(run_set(SetOpKind::Difference, &a, &b), vec![1, 5, 9, 11]);
    }

    #[test]
    fn scalar_union_matches_reference() {
        let a = [1u32, 3, 5];
        let b = [2u32, 3, 6, 7];
        assert_eq!(run_set(SetOpKind::Union, &a, &b), vec![1, 2, 3, 5, 6, 7]);
    }

    #[test]
    fn scalar_ops_handle_empty_sets() {
        assert_eq!(
            run_set(SetOpKind::Intersect, &[], &[1, 2]),
            Vec::<u32>::new()
        );
        assert_eq!(run_set(SetOpKind::Union, &[], &[1, 2]), vec![1, 2]);
        assert_eq!(run_set(SetOpKind::Difference, &[5], &[]), vec![5]);
    }

    #[test]
    fn scalar_merge_sort_sorts() {
        let n = 64u32;
        let data: Vec<u32> = (0..n)
            .map(|i| i.wrapping_mul(2654435761).wrapping_add(i * 7) ^ 0x5a5a)
            .collect();
        let src = DMEM0_BASE;
        let dst = DMEM0_BASE + 0x4000;
        let (prog, in_dst) = merge_sort_program(src, dst, n).unwrap();
        let mut p = Processor::new(CpuConfig::local_store_core(1, 64)).unwrap();
        p.load_program(prog).unwrap();
        p.mem.poke_words(src, &data).unwrap();
        p.run(50_000_000).unwrap();
        let out = p
            .mem
            .peek_words(if in_dst { dst } else { src }, n as usize)
            .unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn scalar_merge_sort_single_element_block() {
        // n = 4 exercises a single pass (width 1,2 merges only).
        let data = [4u32, 1, 3, 2];
        let src = DMEM0_BASE;
        let dst = DMEM0_BASE + 0x100;
        let (prog, in_dst) = merge_sort_program(src, dst, 4).unwrap();
        let mut p = Processor::new(CpuConfig::local_store_core(1, 64)).unwrap();
        p.load_program(prog).unwrap();
        p.mem.poke_words(src, &data).unwrap();
        p.run(1_000_000).unwrap();
        let out = p.mem.peek_words(if in_dst { dst } else { src }, 4).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
