//! Merge-sort kernel using the DB instruction-set extension — the paper's
//! Figure 12 core loop.
//!
//! Three phases:
//!
//! 1. **Presort** — `SORT4_LD` pulls four elements through the hardware
//!    sorting network ("special load and store instructions ... which
//!    concurrently perform a sort operation", Section 4), `CPY_ST` writes
//!    the sorted block out: sorted runs of four after one pass.
//! 2. **Merge passes** — pairs of runs are merged with the `STORE_MERGE` /
//!    `LD_MERGE` loop (3 cycles per 4 elements, matching the paper's
//!    "one iteration of the core loop requires only three cycles").
//!    The pass driver (pair pointers, width doubling, ping-pong swap) is
//!    scalar code, as it would be in the paper's C-with-intrinsics.
//! 3. **Remainders** — a run without a partner is copied with the 128-bit
//!    copy instructions ("as soon as one list is empty the remainder
//!    elements ... are copied using 128-bit copy instructions").
//!
//! `n` must be a positive multiple of 4 (the presort block size); the
//! runner pads with sentinels and strips them after sorting.

use super::{e, e_r, e_s, SortLayout};
use crate::ops::{opcodes as op, DbExtConfig};
use dbx_cpu::isa::regs::*;
use dbx_cpu::{Program, ProgramBuilder, SimError};

/// Builds the EIS merge-sort program. Returns the program and whether the
/// sorted data ends up in the `dst` buffer.
pub fn merge_sort_program(
    _wiring: &DbExtConfig,
    layout: &SortLayout,
) -> Result<(Program, bool), SimError> {
    let n = layout.n;
    assert!(
        n >= 4 && n.is_multiple_of(4),
        "sort kernel needs a positive multiple of 4"
    );
    let mut b = ProgramBuilder::new();

    // a1 = width bytes, a13 = total bytes, a14 = src, a15 = dst.
    b.label("init");
    b.movi(A14, layout.src as i32);
    b.movi(A15, layout.dst as i32);
    b.movi(A13, (n * 4) as i32);

    // ---- presort pass: sorted runs of 4, src -> dst ----
    b.label("presort");
    b.inst(e(op::INIT));
    b.inst(e_s(op::WUR_PTR_A, A14));
    b.add(A2, A14, A13);
    b.inst(e_s(op::WUR_END_A, A2));
    b.inst(e_s(op::WUR_PTR_C, A15));
    b.movi(A3, (n / 4) as i32);
    b.label("presort_loop");
    b.inst(e(op::SORT4_LD));
    b.inst(e(op::CPY_ST));
    b.addi(A3, A3, -1);
    b.bnez(A3, "presort_loop");
    // Swap ping/pong; width = 4 elements.
    b.mov(A10, A14);
    b.mov(A14, A15);
    b.mov(A15, A10);
    b.movi(A1, 16);

    // ---- merge passes ----
    b.label("pass_loop");
    b.bgeu(A1, A13, "done_passes");
    b.movi(A2, 0); // l (byte offset)

    b.label("pair_loop");
    b.bgeu(A2, A13, "pass_end");
    b.add(A3, A2, A1);
    b.minu(A3, A3, A13); // m
    b.add(A4, A3, A1);
    b.minu(A4, A4, A13); // r
    b.beq(A3, A4, "pair_copy"); // lone run: copy-through

    // Merge [l, m) with [m, r) into dst + l.
    b.inst(e(op::INIT));
    b.add(A5, A14, A2);
    b.inst(e_s(op::WUR_PTR_A, A5));
    b.add(A5, A14, A3);
    b.inst(e_s(op::WUR_END_A, A5));
    b.inst(e_s(op::WUR_PTR_B, A5)); // ptr_b = src + m
    b.add(A5, A14, A4);
    b.inst(e_s(op::WUR_END_B, A5));
    b.add(A5, A15, A2);
    b.inst(e_s(op::WUR_PTR_C, A5));
    b.inst(e(op::LD_MERGE));
    b.inst(e(op::LD_MERGE)); // prime both run buffers
    b.label("merge_loop");
    b.inst(e_r(op::STORE_MERGE, A7));
    b.inst(e(op::LD_MERGE));
    b.bnez(A7, "merge_loop");
    b.inst(e(op::ST_FLUSH));
    b.inst(e(op::ST_FLUSH));
    b.j("pair_next");

    // Copy [l, m) to dst + l (no partner run).
    b.label("pair_copy");
    b.inst(e(op::INIT));
    b.add(A5, A14, A2);
    b.inst(e_s(op::WUR_PTR_A, A5));
    b.add(A5, A14, A3);
    b.inst(e_s(op::WUR_END_A, A5));
    b.add(A5, A15, A2);
    b.inst(e_s(op::WUR_PTR_C, A5));
    b.label("copy_loop");
    b.inst(e(op::CPY_LD_A));
    b.inst(e(op::CPY_ST));
    b.inst(e_r(op::RUR_CPY_PEND, A8));
    b.bnez(A8, "copy_loop");

    b.label("pair_next");
    b.slli(A10, A1, 1);
    b.add(A2, A2, A10);
    b.j("pair_loop");

    b.label("pass_end");
    b.mov(A10, A14);
    b.mov(A14, A15);
    b.mov(A15, A10);
    b.slli(A1, A1, 1);
    b.j("pass_loop");

    b.label("done_passes");
    b.halt();

    // Buffer parity: presort swaps once, then one swap per merge pass.
    let mut passes = 1u32;
    let mut w = 16u64;
    while w < (n as u64) * 4 {
        passes += 1;
        w *= 2;
    }
    Ok((b.build()?, passes % 2 == 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::DbExtension;
    use dbx_cpu::{CpuConfig, Processor, DMEM0_BASE};

    fn run_sort(data: &[u32]) -> (Vec<u32>, u64) {
        let n = data.len() as u32;
        let layout = SortLayout {
            src: DMEM0_BASE,
            dst: DMEM0_BASE + 0x8000,
            n,
        };
        let wiring = DbExtConfig::one_lsu(false);
        let (prog, in_dst) = merge_sort_program(&wiring, &layout).unwrap();
        let mut p = Processor::new(CpuConfig::local_store_core(1, 64)).unwrap();
        p.attach_extension(Box::new(DbExtension::new(wiring)));
        p.load_program(prog).unwrap();
        p.mem.poke_words(layout.src, data).unwrap();
        let stats = p.run(100_000_000).unwrap();
        let base = if in_dst { layout.dst } else { layout.src };
        (p.mem.peek_words(base, data.len()).unwrap(), stats.cycles)
    }

    fn pseudo_random(n: usize, seed: u32) -> Vec<u32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                x
            })
            .collect()
    }

    #[test]
    fn sorts_exact_block_count() {
        let data = pseudo_random(64, 42);
        let (got, _) = run_sort(&data);
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn sorts_non_power_of_two_runs() {
        // 3 and 5 runs exercise the lone-run copy path.
        for n in [12usize, 20, 44, 100] {
            let data = pseudo_random(n, n as u32);
            let (got, _) = run_sort(&data);
            let mut expect = data;
            expect.sort_unstable();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn sorts_single_block() {
        let (got, _) = run_sort(&[9, 2, 7, 4]);
        assert_eq!(got, vec![2, 4, 7, 9]);
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let fwd: Vec<u32> = (0..256).collect();
        let (got, cy_fwd) = run_sort(&fwd);
        assert_eq!(got, fwd);
        let rev: Vec<u32> = (0..256).rev().collect();
        let (got, cy_rev) = run_sort(&rev);
        assert_eq!(got, fwd);
        // The paper notes the merge-sort takes no shortcuts on presorted
        // data: both orders should cost about the same.
        let ratio = cy_fwd as f64 / cy_rev as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "order-sensitive cycles: {cy_fwd} vs {cy_rev}"
        );
    }

    #[test]
    fn sorts_with_duplicates_and_extremes() {
        let mut data = vec![u32::MAX, 0, u32::MAX, 0, 5, 5, 5, 5];
        data.extend(pseudo_random(56, 7).iter().map(|x| x % 10));
        let (got, _) = run_sort(&data);
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_core_loop_is_three_cycles_per_block() {
        // For large n the merge passes dominate: cycles/element/pass
        // should approach 3/4 (3-cycle loop emitting 4 elements).
        let data = pseudo_random(2048, 3);
        let (_, cycles) = run_sort(&data);
        let n = data.len() as f64;
        let merge_passes = (n / 4.0).log2().ceil();
        // The 3-cycle loop plus per-pair setup/prime/drain overhead (heavy
        // on the early short-run passes) lands in the 1-2 range; the
        // paper's own implementation measures ~1.3 (Table 2: 29.3 M
        // elements/s at 424 MHz over ~11.5 passes).
        let per_elem_pass = cycles as f64 / (n * (merge_passes + 0.5));
        assert!(
            (0.75..2.0).contains(&per_elem_pass),
            "expected ~0.75-2.0 cycles/element/pass, got {per_elem_pass} ({cycles} cycles)"
        );
    }
}
