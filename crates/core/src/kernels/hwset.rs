//! Sorted-set kernels using the DB instruction-set extension — the
//! paper's Figure 11 core loop.
//!
//! Steady-state schedules (one line = one cycle):
//!
//! * intersection/difference, two LSUs:
//!   `STORE_SOP` ; `LD_LDP_SHUFFLE`
//! * intersection/difference, one LSU (an extra load cycle because both
//!   input streams share LSU0):
//!   `STORE_SOP` ; `LD_LDP_SHUFFLE` ; `LD_ANY`
//! * union adds one `ST` cycle — it can emit up to eight elements per
//!   `SOP` (Table 4 discussion: the union "may write values from both
//!   input sets in one operation").
//!
//! The loop body is unrolled (default 32x as in Section 4) and closed by a
//! single `BNEZ` on the continue flag that the fused `STORE_SOP` writes,
//! giving the paper's ~2.03 cycles per iteration. Epilogues flush the
//! store FIFO and, for union/difference, drain the surviving stream with
//! the 128-bit copy instructions.

use super::{e, e_r, e_s, SetLayout};
use crate::datapath::SetOpKind;
use crate::ops::{opcodes as op, DbExtConfig};
use dbx_cpu::isa::regs::*;

use dbx_cpu::{Program, ProgramBuilder, SimError};

/// Default unroll factor (Section 4 of the paper).
pub const DEFAULT_UNROLL: usize = 32;

/// Builds the EIS sorted-set program for `kind` over `layout` with the
/// given LSU `wiring` and loop `unroll` factor.
pub fn set_op_program(
    kind: SetOpKind,
    wiring: &DbExtConfig,
    layout: &SetLayout,
    unroll: usize,
) -> Result<Program, SimError> {
    let mut b = ProgramBuilder::new();
    // ---- initialisation (Figure 11: INIT_STATES + initial load) ----
    b.label("init");
    b.inst(e(op::INIT));
    b.movi(A2, layout.a_base as i32);
    b.inst(e_s(op::WUR_PTR_A, A2));
    b.movi(A2, layout.a_end() as i32);
    b.inst(e_s(op::WUR_END_A, A2));
    b.movi(A2, layout.b_base as i32);
    b.inst(e_s(op::WUR_PTR_B, A2));
    b.movi(A2, layout.b_end() as i32);
    b.inst(e_s(op::WUR_END_B, A2));
    b.movi(A2, layout.c_base as i32);
    b.inst(e_s(op::WUR_PTR_C, A2));
    emit_core_and_epilogue(&mut b, kind, wiring, unroll);
    b.build()
}

/// Builds a reusable EIS sorted-set program whose stream pointers come
/// from a five-word parameter block at `param_block` (a mailbox the
/// streaming driver rewrites per chunk): `[ptr_a, end_a, ptr_b, end_b,
/// ptr_c]`. The block must live in DMEM0.
pub fn set_op_program_param(
    kind: SetOpKind,
    wiring: &DbExtConfig,
    param_block: u32,
    unroll: usize,
) -> Result<Program, SimError> {
    let mut b = ProgramBuilder::new();
    b.label("init");
    b.inst(e(op::INIT));
    b.movi(A3, param_block as i32);
    b.l32i(A2, A3, 0);
    b.inst(e_s(op::WUR_PTR_A, A2));
    b.l32i(A2, A3, 4);
    b.inst(e_s(op::WUR_END_A, A2));
    b.l32i(A2, A3, 8);
    b.inst(e_s(op::WUR_PTR_B, A2));
    b.l32i(A2, A3, 12);
    b.inst(e_s(op::WUR_END_B, A2));
    b.l32i(A2, A3, 16);
    b.inst(e_s(op::WUR_PTR_C, A2));
    emit_core_and_epilogue(&mut b, kind, wiring, unroll);
    b.build()
}

fn emit_core_and_epilogue(
    b: &mut ProgramBuilder,
    kind: SetOpKind,
    wiring: &DbExtConfig,
    unroll: usize,
) {
    assert!(unroll >= 1);
    let store_sop = match kind {
        SetOpKind::Intersect => op::STORE_SOP_ISECT,
        SetOpKind::Union => op::STORE_SOP_UNION,
        SetOpKind::Difference => op::STORE_SOP_DIFF,
    };
    // Prime the Load states and Word windows. With one LSU each
    // LD_LDP_SHUFFLE loads a single beat, so prime longer; unaligned
    // chunk heads can take one extra beat per stream.
    let prime = if wiring.n_lsus == 2 { 3 } else { 5 };
    for _ in 0..prime {
        b.inst(e(op::LD_LDP_SHUFFLE));
    }

    // ---- unrolled core loop ----
    b.label("core_loop");
    for _ in 0..unroll {
        b.inst(e_r(store_sop, A7));
        if kind == SetOpKind::Union {
            b.inst(e(op::ST)); // extra drain cycle for 8-wide emissions
        }
        b.inst(e(op::LD_LDP_SHUFFLE));
        if wiring.n_lsus == 1 {
            b.inst(e(op::LD_ANY)); // second stream's beat
        }
    }
    b.bnez(A7, "core_loop");

    // ---- epilogue ----
    b.label("epilogue");
    for _ in 0..4 {
        b.inst(e(op::ST_FLUSH));
    }
    match kind {
        SetOpKind::Intersect => {}
        SetOpKind::Difference => {
            // Only a surviving A stream contributes: if B is not done then
            // A is, and nothing remains to copy.
            b.inst(e_r(op::RUR_B_DONE, A8));
            b.beqz(A8, "finish");
            drain_and_copy(b, wiring, false, "a");
        }
        SetOpKind::Union => {
            b.inst(e_r(op::RUR_A_DONE, A8));
            b.bnez(A8, "drain_b");
            drain_and_copy(b, wiring, false, "a");
            b.j("finish");
            b.label("drain_b");
            drain_and_copy(b, wiring, true, "b");
        }
    }
    b.label("finish");
    b.inst(e_r(op::RUR_OUT_CNT, A2));
    b.halt();
}

/// Emits the epilogue that drains window/load buffers of one stream into
/// the store path and copies the stream's memory remainder with the
/// 128-bit copy instructions.
fn drain_and_copy(b: &mut ProgramBuilder, wiring: &DbExtConfig, b_side: bool, tag: &str) {
    b.inst(e(if b_side { op::DRAIN_B } else { op::DRAIN_A }));
    for _ in 0..4 {
        b.inst(e(op::ST_FLUSH));
    }
    let cpy_ld = if b_side { op::CPY_LD_B } else { op::CPY_LD_A };
    let loop_label = format!("copy_{tag}");
    b.label(&loop_label);
    // With two LSUs, copying stream A can pipeline load (LSU0) and store
    // (LSU1) in one bundle; stream B shares LSU1 with the store path and
    // the single-LSU wiring shares LSU0, so those go sequentially.
    if wiring.n_lsus == 2 && !b_side {
        b.flix([e(cpy_ld), e(op::CPY_ST)]);
    } else {
        b.inst(e(cpy_ld));
        b.inst(e(op::CPY_ST));
    }
    b.inst(e_r(op::RUR_CPY_PEND, A8));
    b.bnez(A8, &loop_label);
}

/// Approximate steady-state cycles per core-loop iteration for a schedule
/// (used by reports and the pipeline experiment; measured numbers come
/// from the simulator).
pub fn cycles_per_iteration(kind: SetOpKind, wiring: &DbExtConfig, unroll: usize) -> f64 {
    let mut per_iter = 2.0; // STORE_SOP + LD_LDP_SHUFFLE
    if kind == SetOpKind::Union {
        per_iter += 1.0;
    }
    if wiring.n_lsus == 1 {
        per_iter += 1.0;
    }
    per_iter + 1.0 / unroll as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::DbExtension;
    use dbx_cpu::{CpuConfig, Processor, DMEM0_BASE, DMEM1_BASE};

    fn reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
        let bs: std::collections::BTreeSet<u32> = b.iter().copied().collect();
        match kind {
            SetOpKind::Intersect => a.iter().copied().filter(|x| bs.contains(x)).collect(),
            SetOpKind::Difference => a.iter().copied().filter(|x| !bs.contains(x)).collect(),
            SetOpKind::Union => {
                let mut s: std::collections::BTreeSet<u32> = a.iter().copied().collect();
                s.extend(b.iter().copied());
                s.into_iter().collect()
            }
        }
    }

    fn run_eis(
        kind: SetOpKind,
        wiring: DbExtConfig,
        a: &[u32],
        b: &[u32],
        unroll: usize,
    ) -> (Vec<u32>, u64) {
        let (cfg, layout) = if wiring.n_lsus == 2 {
            (
                CpuConfig::local_store_core(2, 32),
                SetLayout {
                    a_base: DMEM0_BASE,
                    a_len: a.len() as u32,
                    b_base: DMEM1_BASE,
                    b_len: b.len() as u32,
                    c_base: DMEM1_BASE + 0x3000,
                },
            )
        } else {
            (
                CpuConfig::local_store_core(1, 64),
                SetLayout {
                    a_base: DMEM0_BASE,
                    a_len: a.len() as u32,
                    b_base: DMEM0_BASE + 0x3000,
                    b_len: b.len() as u32,
                    c_base: DMEM0_BASE + 0x6000,
                },
            )
        };
        let prog = set_op_program(kind, &wiring, &layout, unroll).unwrap();
        let mut p = Processor::new(cfg).unwrap();
        p.attach_extension(Box::new(DbExtension::new(wiring)));
        p.load_program(prog).unwrap();
        p.mem.poke_words(layout.a_base, a).unwrap();
        p.mem.poke_words(layout.b_base, b).unwrap();
        let stats = p.run(100_000_000).unwrap();
        let n = p.ar[2] as usize;
        (p.mem.peek_words(layout.c_base, n).unwrap(), stats.cycles)
    }

    fn strict_set(seed: u32, len: usize, stride: u32) -> Vec<u32> {
        let mut v = Vec::with_capacity(len);
        let mut x = seed;
        for i in 0..len {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            v.push(seed + i as u32 * stride + (x % stride.max(1)));
        }
        v.dedup();
        v
    }

    #[test]
    fn eis_all_kinds_all_wirings_match_reference() {
        let a = strict_set(10, 100, 7);
        let b = strict_set(3, 80, 9);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            for wiring in [
                DbExtConfig::one_lsu(true),
                DbExtConfig::one_lsu(false),
                DbExtConfig::two_lsu(true),
                DbExtConfig::two_lsu(false),
            ] {
                let (got, _) = run_eis(kind, wiring, &a, &b, 8);
                assert_eq!(
                    got,
                    reference(kind, &a, &b),
                    "kind={kind:?} lsus={} partial={}",
                    wiring.n_lsus,
                    wiring.partial_loading
                );
            }
        }
    }

    #[test]
    fn eis_identical_sets() {
        let a = strict_set(5, 64, 3);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let (got, _) = run_eis(kind, DbExtConfig::two_lsu(true), &a, &a, 4);
            assert_eq!(got, reference(kind, &a, &a), "{kind:?}");
        }
    }

    #[test]
    fn eis_disjoint_sets() {
        let a: Vec<u32> = (0..50).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..50).map(|i| 2 * i + 1).collect();
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let (got, _) = run_eis(kind, DbExtConfig::one_lsu(true), &a, &b, 8);
            assert_eq!(got, reference(kind, &a, &b), "{kind:?}");
        }
    }

    #[test]
    fn eis_skewed_lengths_and_tails() {
        // Non-multiple-of-4 lengths exercise the sentinel tail handling.
        let a = strict_set(1, 37, 5);
        let b = strict_set(2, 101, 3);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            for wiring in [DbExtConfig::one_lsu(true), DbExtConfig::two_lsu(false)] {
                let (got, _) = run_eis(kind, wiring, &a, &b, 8);
                assert_eq!(got, reference(kind, &a, &b), "{kind:?}");
            }
        }
    }

    #[test]
    fn eis_one_element_sets() {
        let (got, _) = run_eis(
            SetOpKind::Intersect,
            DbExtConfig::two_lsu(true),
            &[5],
            &[5],
            2,
        );
        assert_eq!(got, vec![5]);
        let (got, _) = run_eis(SetOpKind::Union, DbExtConfig::one_lsu(false), &[5], &[9], 2);
        assert_eq!(got, vec![5, 9]);
    }

    #[test]
    fn partial_loading_is_faster_at_midrange_selectivity() {
        // ~50% overlap, as in the paper's default setting.
        let a: Vec<u32> = (0..512).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..512)
            .map(|i| if i % 2 == 0 { 2 * i } else { 2 * i + 1 })
            .collect();
        let (r1, cy_partial) =
            run_eis(SetOpKind::Intersect, DbExtConfig::two_lsu(true), &a, &b, 32);
        let (r2, cy_full) = run_eis(
            SetOpKind::Intersect,
            DbExtConfig::two_lsu(false),
            &a,
            &b,
            32,
        );
        assert_eq!(r1, r2);
        assert!(
            cy_partial < cy_full,
            "partial loading should win: {cy_partial} vs {cy_full}"
        );
    }

    #[test]
    fn two_lsus_beat_one() {
        let a: Vec<u32> = (0..1000).map(|i| 3 * i).collect();
        let b: Vec<u32> = (0..1000).map(|i| 3 * i + (i % 3)).collect();
        let (r1, cy2) = run_eis(SetOpKind::Intersect, DbExtConfig::two_lsu(true), &a, &b, 32);
        let (r2, cy1) = run_eis(SetOpKind::Intersect, DbExtConfig::one_lsu(true), &a, &b, 32);
        assert_eq!(r1, r2);
        assert!(cy2 < cy1, "2 LSUs should win: {cy2} vs {cy1}");
    }

    #[test]
    fn single_beat_load_buffer_bubbles() {
        // The paper's Figure 8 draws one beat of Load states; partial
        // loading then starves the Word windows every few iterations.
        // This is the measured justification for the two-beat deviation
        // documented in DESIGN.md.
        let a = strict_set(10, 2000, 7);
        let b = strict_set(3, 2000, 9);
        let two = DbExtConfig::two_lsu(true);
        let one_beat = DbExtConfig::two_lsu(true).with_load_buf_cap(4);
        let (r8, cy8) = run_eis(SetOpKind::Intersect, two, &a, &b, 32);
        let (r4, cy4) = run_eis(SetOpKind::Intersect, one_beat, &a, &b, 32);
        assert_eq!(r8, r4, "depth must not change the result");
        assert!(
            cy4 as f64 > 1.1 * cy8 as f64,
            "one-beat buffer should bubble: {cy4} vs {cy8}"
        );
    }

    #[test]
    fn steady_state_cycle_budget_matches_schedule() {
        // Intersection at 100% selectivity consumes 8 elements per
        // iteration; the 2-LSU schedule spends ~2.03 cycles per iteration
        // at 32x unroll, so cycles/element ~ 0.254.
        let a: Vec<u32> = (0..4096).collect();
        let (_, cycles) = run_eis(SetOpKind::Intersect, DbExtConfig::two_lsu(true), &a, &a, 32);
        let per_elem = cycles as f64 / (2.0 * a.len() as f64);
        assert!(
            (0.23..0.33).contains(&per_elem),
            "expected ~0.25-0.3 cycles/element, got {per_elem} ({cycles} cycles)"
        );
    }
}
