//! The paper's processor configurations (Section 5.1, Table 2).
//!
//! | Model | Local store | LSUs | EIS | Partial loading |
//! |---|---|---|---|---|
//! | `108Mini` | – (cache) | 1 (32-bit) | – | – |
//! | `DBA_1LSU` | 64 KiB | 1 (128-bit) | – | – |
//! | `DBA_1LSU_EIS` | 64 KiB | 1 (128-bit) | yes | no / yes |
//! | `DBA_2LSU_EIS` | 2x32 KiB | 2 (128-bit) | yes | no / yes |
//!
//! The paper's measured core frequencies (from synthesis, Table 2/3) are
//! carried as reference constants; `dbx-synth` *computes* frequencies from
//! its structural timing model and the harness reports both.

use crate::ops::DbExtConfig;
use dbx_cpu::CpuConfig;

/// One of the paper's processor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcModel {
    /// The Tensilica Diamond 108Mini baseline: cache-based, 32-bit buses.
    Mini108,
    /// DBA base core: local store, 128-bit bus, one LSU, no EIS.
    Dba1Lsu,
    /// DBA base core with a second LSU but no EIS. Synthesized in the
    /// paper's Table 3, but never benchmarked: "the compiler is not able
    /// to make use of it. Consequently, performance is the same" (§5.1).
    Dba2Lsu,
    /// DBA core with the DB instruction-set extension, one LSU.
    Dba1LsuEis {
        /// Partial loading enabled.
        partial: bool,
    },
    /// DBA core with the extension and two LSUs.
    Dba2LsuEis {
        /// Partial loading enabled.
        partial: bool,
    },
}

impl ProcModel {
    /// All processor models, including the Table-3-only plain DBA_2LSU.
    pub fn synthesis_models() -> [ProcModel; 7] {
        [
            ProcModel::Mini108,
            ProcModel::Dba1Lsu,
            ProcModel::Dba2Lsu,
            ProcModel::Dba1LsuEis { partial: false },
            ProcModel::Dba2LsuEis { partial: false },
            ProcModel::Dba1LsuEis { partial: true },
            ProcModel::Dba2LsuEis { partial: true },
        ]
    }

    /// All six benchmarked configurations in the paper's Table 2 row order.
    pub fn all() -> [ProcModel; 6] {
        [
            ProcModel::Mini108,
            ProcModel::Dba1Lsu,
            ProcModel::Dba1LsuEis { partial: false },
            ProcModel::Dba2LsuEis { partial: false },
            ProcModel::Dba1LsuEis { partial: true },
            ProcModel::Dba2LsuEis { partial: true },
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ProcModel::Mini108 => "108Mini",
            ProcModel::Dba1Lsu => "DBA_1LSU",
            ProcModel::Dba2Lsu => "DBA_2LSU",
            ProcModel::Dba1LsuEis { .. } => "DBA_1LSU_EIS",
            ProcModel::Dba2LsuEis { .. } => "DBA_2LSU_EIS",
        }
    }

    /// Partial-loading column of Table 2 ("-", "no", "yes").
    pub fn partial_label(&self) -> &'static str {
        match self {
            ProcModel::Mini108 | ProcModel::Dba1Lsu | ProcModel::Dba2Lsu => "-",
            ProcModel::Dba1LsuEis { partial } | ProcModel::Dba2LsuEis { partial } => {
                if *partial {
                    "yes"
                } else {
                    "no"
                }
            }
        }
    }

    /// Whether the DB instruction-set extension is attached.
    pub fn has_eis(&self) -> bool {
        matches!(
            self,
            ProcModel::Dba1LsuEis { .. } | ProcModel::Dba2LsuEis { .. }
        )
    }

    /// Number of load–store units.
    pub fn n_lsus(&self) -> usize {
        match self {
            ProcModel::Dba2Lsu | ProcModel::Dba2LsuEis { .. } => 2,
            _ => 1,
        }
    }

    /// The base-processor configuration.
    pub fn cpu_config(&self) -> CpuConfig {
        match self {
            ProcModel::Mini108 => {
                let mut c = CpuConfig::small_cached_controller();
                c.name = "108Mini";
                c
            }
            ProcModel::Dba1Lsu => {
                let mut c = CpuConfig::local_store_core(1, 64);
                c.name = "DBA_1LSU";
                // The scalar base core has no FLIX formats; the wide fetch
                // stays (instruction bus was widened to 64 bit, §5.1).
                c.has_flix = false;
                c
            }
            ProcModel::Dba2Lsu => {
                let mut c = CpuConfig::local_store_core(2, 32);
                c.name = "DBA_2LSU";
                c.has_flix = false;
                c
            }
            ProcModel::Dba1LsuEis { .. } => {
                let mut c = CpuConfig::local_store_core(1, 64);
                c.name = "DBA_1LSU_EIS";
                c
            }
            ProcModel::Dba2LsuEis { .. } => {
                let mut c = CpuConfig::local_store_core(2, 32);
                c.name = "DBA_2LSU_EIS";
                c
            }
        }
    }

    /// The extension wiring, when the model carries the EIS.
    pub fn wiring(&self) -> Option<DbExtConfig> {
        match self {
            ProcModel::Mini108 | ProcModel::Dba1Lsu | ProcModel::Dba2Lsu => None,
            ProcModel::Dba1LsuEis { partial } => Some(DbExtConfig::one_lsu(*partial)),
            ProcModel::Dba2LsuEis { partial } => Some(DbExtConfig::two_lsu(*partial)),
        }
    }

    /// Core frequency reported by the paper's synthesis (65 nm, Table 2).
    /// `dbx-synth` computes its own estimate; this is the published value.
    pub fn paper_fmax_mhz(&self) -> f64 {
        match self {
            ProcModel::Mini108 => 442.0,
            ProcModel::Dba1Lsu => 435.0,
            ProcModel::Dba2Lsu => 429.0,
            ProcModel::Dba1LsuEis { .. } => 424.0,
            ProcModel::Dba2LsuEis { .. } => 410.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_are_valid() {
        for m in ProcModel::all() {
            m.cpu_config().validate().unwrap();
            assert_eq!(m.has_eis(), m.wiring().is_some());
            assert!(m.paper_fmax_mhz() > 400.0);
        }
    }

    #[test]
    fn table2_row_order_and_labels() {
        let rows: Vec<(&str, &str)> = ProcModel::all()
            .iter()
            .map(|m| (m.name(), m.partial_label()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("108Mini", "-"),
                ("DBA_1LSU", "-"),
                ("DBA_1LSU_EIS", "no"),
                ("DBA_2LSU_EIS", "no"),
                ("DBA_1LSU_EIS", "yes"),
                ("DBA_2LSU_EIS", "yes"),
            ]
        );
    }

    #[test]
    fn lsu_wiring_matches_model() {
        assert_eq!(
            ProcModel::Dba2LsuEis { partial: true }
                .wiring()
                .unwrap()
                .n_lsus,
            2
        );
        assert_eq!(
            ProcModel::Dba1LsuEis { partial: false }
                .wiring()
                .unwrap()
                .n_lsus,
            1
        );
        assert!(
            ProcModel::Dba2LsuEis { partial: true }
                .wiring()
                .unwrap()
                .partial_loading
        );
    }
}
