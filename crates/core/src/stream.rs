//! Larger-than-local-store processing with the data prefetcher.
//!
//! Section 5.2 of the paper: *"If more values should be used, the data
//! prefetcher is required for reloading elements. System level simulation
//! validates a constant throughput of the processor for larger data sets
//! due to the concurrently performed data prefetch."* This module is that
//! system-level simulation: input sets live in off-chip system memory, the
//! DMAC streams value-aligned chunks into the dual-port local memories
//! while the core runs the set-operation kernel on the previous chunk
//! (double buffering), and results stream back out.
//!
//! Chunking is *value-aligned*: chunk `k` covers the value range
//! `(v_{k-1}, v_k]` in both sets, so per-chunk results concatenate into
//! the exact set-operation result. The chunk boundaries are computed by
//! the host-side driver, which models the "other entity in the system"
//! that programs the prefetcher FSM (Section 3.2).
//!
//! Modelling note (DESIGN.md): per-chunk results are written back to
//! 16-byte-aligned staging slots (real hardware would use byte-enabled
//! DMA for the final compaction); the result is assembled host-side while
//! the write-back traffic is fully accounted.

use crate::configs::ProcModel;
use crate::datapath::SetOpKind;
use crate::kernels::hwset;
use crate::runner::{build_processor_with, run_set_op, scalar_fallback, RecoveryPolicy};
use dbx_cpu::{Processor, SimError, DMEM0_BASE, DMEM1_BASE, SYSMEM_BASE};
use dbx_faults::{FaultCounters, FaultPlan, ProtectionKind};
use dbx_mem::prefetch::{Direction, DmacProgram, FsmStep, TransferDescriptor};
use dbx_observe::{Observer, TrackId};

/// Streaming configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Elements per chunk per set (capped per operation so that two
    /// chunks of each set plus the result slots fit the local memories).
    pub chunk_elems: usize,
    /// Loop unroll factor of the chunk kernel.
    pub unroll: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_elems: 1536,
            unroll: 16,
        }
    }
}

/// Resilience knobs for a streamed run. `Default` reproduces the plain
/// [`stream_set_op`] behaviour.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Overrides the model's local-memory protection scheme.
    pub protection: Option<ProtectionKind>,
    /// Deterministic fault plan (event cycles are relative to each chunk
    /// kernel's start, since the core's cycle counter resets per chunk).
    /// Cleared on the first recovery so retries run clean.
    pub fault_plan: Option<FaultPlan>,
    /// What to do when a machine fault interrupts a chunk.
    pub policy: RecoveryPolicy,
    /// Watchdog cycle budget per chunk kernel run.
    pub watchdog_per_chunk: Option<u64>,
    /// Observability sink: per-chunk `kernel` spans on the core track,
    /// DMA-wait spans mirrored onto the DMAC track, and stream counters.
    pub observer: Observer,
}

/// Outcome of a streamed set operation.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// The set-operation result.
    pub result: Vec<u32>,
    /// Total cycles including DMA stalls.
    pub total_cycles: u64,
    /// Cycles spent executing kernel code.
    pub kernel_cycles: u64,
    /// Cycles the core had to wait for outstanding DMA transfers.
    pub dma_stall_cycles: u64,
    /// Bytes moved by the prefetcher.
    pub bytes_streamed: u64,
    /// Number of chunk pairs processed.
    pub chunks: u64,
    /// Chunk re-runs consumed by the recovery policy.
    pub chunk_retries: u64,
    /// Chunks whose result came from the degraded scalar fallback.
    pub degraded_chunks: u64,
    /// Fault counters aggregated over the whole stream.
    pub faults: FaultCounters,
}

// Local-memory layout for streaming (2-LSU core: 32 KiB per memory).
const PARAM_BLOCK: u32 = DMEM0_BASE; // 5 words
const A_BUF: [u32; 2] = [DMEM0_BASE + 0x40, DMEM0_BASE + 0x2840];
const B_BUF: [u32; 2] = [DMEM1_BASE, DMEM1_BASE + 0x2800];
const C_BUF: [u32; 2] = [DMEM1_BASE + 0x5000, DMEM1_BASE + 0x6800];
/// Upper bound on `chunk_elems` (buffer slots are 0x2800 bytes).
const MAX_CHUNK: usize = 2048;

/// Streams a sorted-set operation over inputs living in system memory.
///
/// Runs on the dual-LSU EIS core (the only configuration with dual-port
/// memories on both streams). Inputs must be strictly increasing.
pub fn stream_set_op(
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    cfg: StreamConfig,
) -> Result<StreamRun, SimError> {
    stream_set_op_with(kind, a, b, cfg, &StreamOptions::default())
}

/// [`stream_set_op`] with resilience options. The recovery checkpoint is
/// the value-aligned chunk boundary: when a chunk kernel faults, the
/// driver re-issues the chunk's prefetch (plus any in-flight write-back
/// and next-chunk prefetch, all idempotent) and re-runs just that chunk;
/// with [`RecoveryPolicy::DegradeToScalar`], an exhausted chunk is
/// recomputed on the trusted scalar pipeline instead.
pub fn stream_set_op_with(
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    cfg: StreamConfig,
    opts: &StreamOptions,
) -> Result<StreamRun, SimError> {
    // The C slots hold 0x1800 bytes; union can emit the sum of both chunk
    // lengths, the other operations at most one chunk length.
    let per_kind_cap = if kind == SetOpKind::Union {
        0x1800 / 8
    } else {
        0x1800 / 4
    };
    let chunk = cfg.chunk_elems.min(per_kind_cap).min(MAX_CHUNK);
    assert!(chunk >= 8, "chunk too small");

    let model = ProcModel::Dba2LsuEis { partial: true };
    let wiring = model.wiring().expect("EIS model");
    let mut p = build_processor_with(model, opts.protection)?;
    let program = hwset::set_op_program_param(kind, &wiring, PARAM_BLOCK, cfg.unroll)?;
    p.load_program(program)?;
    if let Some(plan) = &opts.fault_plan {
        p.set_fault_plan(plan.clone());
    }
    p.set_watchdog(opts.watchdog_per_chunk);

    // Inputs and the result staging area in system memory.
    let a_base = SYSMEM_BASE;
    let b_base = align16(a_base + 4 * a.len() as u32);
    let stage_base = align16(b_base + 4 * b.len() as u32);
    p.mem.poke_words(a_base, a)?;
    p.mem.poke_words(b_base, b)?;

    let mut run = StreamRun {
        result: Vec::new(),
        total_cycles: 0,
        kernel_cycles: 0,
        dma_stall_cycles: 0,
        bytes_streamed: 0,
        chunks: 0,
        chunk_retries: 0,
        degraded_chunks: 0,
        faults: FaultCounters::default(),
    };

    // Host-side planning of all value-aligned chunk pairs (the driver can
    // see the sorted inputs, like a query executor planning RID ranges).
    let mut plans = Vec::new();
    let (mut pa, mut pb) = (0usize, 0usize);
    while let Some((ra, rb)) = plan_chunk(a, b, pa, pb, chunk) {
        pa = ra.end;
        pb = rb.end;
        plans.push((ra, rb));
    }

    let obs = &opts.observer;
    // Startup: prefetch chunk 0 and wait for it (unavoidable cold start).
    if let Some((ra, rb)) = plans.first() {
        let prog = prefetch_program(a_base, b_base, ra, rb, 0);
        dmac_load(&mut p, prog, &mut run, obs)?;
        drain_dmac(&mut p, &mut run, obs)?;
    }

    // Pipeline: while the kernel processes chunk i (buffers i % 2), one
    // FSM program writes back chunk i-1's result and prefetches chunk
    // i+1 — all overlapped with execution.
    let mut stage_off = 0u32;
    let mut prev_wb: Option<TransferDescriptor> = None;
    for i in 0..plans.len() {
        let pending_wb = prev_wb;
        let mut steps = Vec::new();
        let mut descriptors = Vec::new();
        if let Some(d) = prev_wb.take() {
            steps.push(FsmStep::Transfer { desc: 0 });
            descriptors.push(d);
        }
        if let Some((ra, rb)) = plans.get(i + 1) {
            let pre = prefetch_program(a_base, b_base, ra, rb, (i + 1) % 2);
            for d in &pre.descriptors {
                steps.push(FsmStep::Transfer {
                    desc: descriptors.len(),
                });
                descriptors.push(*d);
            }
        }
        steps.push(FsmStep::Halt);
        dmac_load(&mut p, DmacProgram { steps, descriptors }, &mut run, obs)?;

        let (ra, rb) = &plans[i];
        let mut attempt = 0u32;
        let emitted = loop {
            match run_chunk(&mut p, ra, rb, i, &mut run, obs) {
                Ok(v) => break v,
                Err(e) if is_survivable(&e) => {
                    run.faults.merge(&p.fault_counters());
                    obs.place(&format!("chunk{i}"), "fault", p.cycles, || {
                        vec![("error", format!("{e}").into())]
                    });
                    if matches!(opts.policy, RecoveryPolicy::FailFast) {
                        return Err(e);
                    }
                    // Transient-upset model: the repeat runs clean.
                    p.clear_fault_plan();
                    if attempt < opts.policy.max_retries() {
                        attempt += 1;
                        run.chunk_retries += 1;
                        // Rewind to the chunk checkpoint: re-issue the
                        // (idempotent) in-flight write-back and the
                        // prefetches of this chunk and the next.
                        replay_checkpoint(
                            &mut p, &mut run, a_base, b_base, &plans, i, pending_wb, obs,
                        )?;
                        continue;
                    }
                    if matches!(opts.policy, RecoveryPolicy::DegradeToScalar { .. }) {
                        // Recompute just this chunk on the trusted scalar
                        // pipeline, host-side, from the pristine inputs.
                        let kr = run_set_op(
                            scalar_fallback(model),
                            kind,
                            &a[ra.clone()],
                            &b[rb.clone()],
                        )?;
                        run.degraded_chunks += 1;
                        run.kernel_cycles += kr.cycles;
                        run.total_cycles += kr.cycles;
                        obs.place(&format!("chunk{i}"), "kernel", kr.cycles, || {
                            vec![
                                ("degraded", "true".into()),
                                ("rows_out", kr.result.len().into()),
                            ]
                        });
                        // Re-arm the DMA pipeline for the following chunk.
                        replay_checkpoint(
                            &mut p, &mut run, a_base, b_base, &plans, i, pending_wb, obs,
                        )?;
                        // Stage the scalar result through the chunk's C
                        // slot so the write-back path stays uniform.
                        p.mem.poke_words(C_BUF[i % 2], &kr.result)?;
                        break kr.result;
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        };
        if !emitted.is_empty() {
            let beats = (emitted.len() as u32 * 4).div_ceil(16) * 16;
            prev_wb = Some(TransferDescriptor {
                src: C_BUF[i % 2],
                dst: stage_base + stage_off,
                len_bytes: beats,
                burst_bytes: beats,
                dir: Direction::LocalToSys,
            });
            stage_off += beats;
            run.result.extend_from_slice(&emitted);
        }
        run.chunks += 1;
    }
    // Final write-back.
    if let Some(d) = prev_wb.take() {
        let prog = DmacProgram {
            steps: vec![FsmStep::Transfer { desc: 0 }, FsmStep::Halt],
            descriptors: vec![d],
        };
        dmac_load(&mut p, prog, &mut run, obs)?;
    }
    drain_dmac(&mut p, &mut run, obs)?;
    if let Some(d) = p.mem.dmac.as_ref() {
        run.bytes_streamed = d.bytes_moved;
    }
    run.faults.merge(&p.fault_counters());
    if obs.is_enabled() {
        obs.counter("bytes_streamed", run.bytes_streamed as f64);
        obs.counter("chunks", run.chunks as f64);
        obs.counter("dma_stall_cycles", run.dma_stall_cycles as f64);
        obs.counter("faults.injected", run.faults.injected as f64);
        obs.counter("faults.corrected", run.faults.corrected as f64);
        obs.counter("faults.detected", run.faults.detected as f64);
        obs.counter("faults.escaped", run.faults.escaped as f64);
    }
    Ok(run)
}

/// True for errors the recovery policy may absorb: precise machine faults
/// and the raw detected-upset memory errors that can surface from
/// host-side DMA draining (outside [`Processor::step`]'s promotion).
fn is_survivable(e: &SimError) -> bool {
    match e {
        SimError::Fault(_) => true,
        SimError::Mem(m) => m.is_fault(),
        _ => false,
    }
}

/// Rewinds the DMA pipeline to the chunk-`i` checkpoint: re-issues the
/// in-flight write-back of chunk `i-1` (idempotent — the C slot still
/// holds its data) and the prefetches of chunks `i` and `i+1`, then waits
/// for all of it (counted as DMA stall).
#[allow(clippy::too_many_arguments)]
fn replay_checkpoint(
    p: &mut Processor,
    run: &mut StreamRun,
    a_base: u32,
    b_base: u32,
    plans: &[(std::ops::Range<usize>, std::ops::Range<usize>)],
    i: usize,
    pending_wb: Option<TransferDescriptor>,
    obs: &Observer,
) -> Result<(), SimError> {
    let mut steps = Vec::new();
    let mut descriptors = Vec::new();
    if let Some(d) = pending_wb {
        steps.push(FsmStep::Transfer { desc: 0 });
        descriptors.push(d);
    }
    for k in [i, i + 1] {
        if let Some((ra, rb)) = plans.get(k) {
            let pre = prefetch_program(a_base, b_base, ra, rb, k % 2);
            for d in &pre.descriptors {
                steps.push(FsmStep::Transfer {
                    desc: descriptors.len(),
                });
                descriptors.push(*d);
            }
        }
    }
    steps.push(FsmStep::Halt);
    dmac_load(p, DmacProgram { steps, descriptors }, run, obs)?;
    drain_dmac(p, run, obs)
}

fn align16(x: u32) -> u32 {
    (x + 15) & !15
}

/// Picks value-aligned prefixes of up to `chunk` elements from each set.
fn plan_chunk(
    a: &[u32],
    b: &[u32],
    pa: usize,
    pb: usize,
    chunk: usize,
) -> Option<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    let na = (a.len() - pa).min(chunk);
    let nb = (b.len() - pb).min(chunk);
    if na == 0 && nb == 0 {
        return None;
    }
    let boundary = match (na, nb) {
        (0, _) => b[pb + nb - 1],
        (_, 0) => a[pa + na - 1],
        _ => a[pa + na - 1].min(b[pb + nb - 1]),
    };
    let a_take = a[pa..pa + na].partition_point(|&x| x <= boundary);
    let b_take = b[pb..pb + nb].partition_point(|&x| x <= boundary);
    Some((pa..pa + a_take, pb..pb + b_take))
}

/// Builds the FSM program that prefetches one chunk pair.
fn prefetch_program(
    a_base: u32,
    b_base: u32,
    ra: &std::ops::Range<usize>,
    rb: &std::ops::Range<usize>,
    parity: usize,
) -> DmacProgram {
    let mut steps = Vec::new();
    let mut descriptors = Vec::new();
    for (base, range, buf) in [(a_base, ra, A_BUF[parity]), (b_base, rb, B_BUF[parity])] {
        if range.is_empty() {
            continue;
        }
        let src_exact = base + 4 * range.start as u32;
        let src = src_exact & !15;
        let head = src_exact - src;
        let len = align16(head + 4 * range.len() as u32);
        steps.push(FsmStep::Transfer {
            desc: descriptors.len(),
        });
        descriptors.push(TransferDescriptor {
            src,
            dst: buf,
            len_bytes: len,
            burst_bytes: len.min(4096),
            dir: Direction::SysToLocal,
        });
    }
    steps.push(FsmStep::Halt);
    DmacProgram { steps, descriptors }
}

/// Loads a DMAC program, first waiting out any still-running transfer
/// (the wait is counted as DMA stall — serialization double buffering is
/// supposed to avoid).
fn dmac_load(
    p: &mut Processor,
    prog: DmacProgram,
    run: &mut StreamRun,
    obs: &Observer,
) -> Result<(), SimError> {
    drain_dmac(p, run, obs)?;
    let d = p
        .mem
        .dmac
        .as_mut()
        .ok_or_else(|| SimError::BadProgram("model has no prefetcher".to_string()))?;
    d.load_program(prog)?;
    Ok(())
}

fn drain_dmac(p: &mut Processor, run: &mut StreamRun, obs: &Observer) -> Result<(), SimError> {
    let mut waited = 0u64;
    while p.mem.dmac.as_ref().is_some_and(|d| !d.is_idle()) {
        p.mem.begin_cycle();
        p.mem.tick_prefetcher()?;
        run.total_cycles += 1;
        run.dma_stall_cycles += 1;
        waited += 1;
        if waited > 100_000_000 {
            return Err(SimError::BadProgram(
                "prefetcher never went idle".to_string(),
            ));
        }
    }
    if waited > 0 {
        // The core-visible stall, mirrored onto the DMAC track at the
        // same cycle interval so the trace shows who the core waited on.
        let start = obs.place("dma.wait", "dma", waited, Vec::new);
        obs.on_track(TrackId::Dmac(0))
            .span_at("transfer", "dma", start, waited, Vec::new);
    }
    Ok(())
}

/// Runs the chunk kernel on a resident chunk pair; returns the emitted
/// elements.
fn run_chunk(
    p: &mut Processor,
    ra: &std::ops::Range<usize>,
    rb: &std::ops::Range<usize>,
    i: usize,
    run: &mut StreamRun,
    obs: &Observer,
) -> Result<Vec<u32>, SimError> {
    let parity = i % 2;
    // The head offset replays the 16-byte rounding of the prefetch.
    let head_a = (4 * ra.start as u32) % 16;
    let head_b = (4 * rb.start as u32) % 16;
    let ptr_a = A_BUF[parity] + head_a;
    let ptr_b = B_BUF[parity] + head_b;
    let params = [
        ptr_a,
        ptr_a + 4 * ra.len() as u32,
        ptr_b,
        ptr_b + 4 * rb.len() as u32,
        C_BUF[parity],
    ];
    p.reset_run_state();
    p.mem.poke_words(PARAM_BLOCK, &params)?;
    let stats = p.run(1_000_000_000)?;
    run.kernel_cycles += stats.cycles;
    run.total_cycles += stats.cycles;
    let n = p.ar[2] as usize;
    obs.place(&format!("chunk{i}"), "kernel", stats.cycles, || {
        vec![
            ("rows_a", ra.len().into()),
            ("rows_b", rb.len().into()),
            ("rows_out", n.into()),
        ]
    });
    p.mem.peek_words(C_BUF[parity], n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
        let bs: std::collections::BTreeSet<u32> = b.iter().copied().collect();
        match kind {
            SetOpKind::Intersect => a.iter().copied().filter(|x| bs.contains(x)).collect(),
            SetOpKind::Difference => a.iter().copied().filter(|x| !bs.contains(x)).collect(),
            SetOpKind::Union => {
                let mut s: std::collections::BTreeSet<u32> = a.iter().copied().collect();
                s.extend(b.iter().copied());
                s.into_iter().collect()
            }
        }
    }

    fn sets(n: usize) -> (Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..n as u32).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| 2 * i + (i % 2)).collect();
        (a, b)
    }

    #[test]
    fn streamed_results_match_reference() {
        let (a, b) = sets(10_000);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let r = stream_set_op(kind, &a, &b, StreamConfig::default()).unwrap();
            assert_eq!(r.result, reference(kind, &a, &b), "{kind:?}");
            assert!(r.chunks > 5, "should take several chunks, got {}", r.chunks);
        }
    }

    #[test]
    fn skewed_sets_stream_correctly() {
        // A much denser than B: chunk boundaries land unevenly.
        let a: Vec<u32> = (0..20_000u32).collect();
        let b: Vec<u32> = (0..2_000u32).map(|i| 10 * i + 3).collect();
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let r = stream_set_op(kind, &a, &b, StreamConfig::default()).unwrap();
            assert_eq!(r.result, reference(kind, &a, &b), "{kind:?}");
        }
    }

    #[test]
    fn small_inputs_take_one_chunk() {
        let (a, b) = sets(100);
        let r = stream_set_op(SetOpKind::Intersect, &a, &b, StreamConfig::default()).unwrap();
        assert_eq!(r.result, reference(SetOpKind::Intersect, &a, &b));
        // One chunk, or two when the value-aligned boundary splits the
        // last element off.
        assert!(
            r.chunks <= 2,
            "expected at most two chunks, got {}",
            r.chunks
        );
    }

    #[test]
    fn chunk_retry_recovers_streamed_parity_faults() {
        use dbx_faults::FaultTarget;
        let (a, b) = sets(10_000);
        let clean = stream_set_op(SetOpKind::Intersect, &a, &b, StreamConfig::default()).unwrap();
        // Word 800 of DMEM0 sits inside the chunk-0 slot of the A buffer;
        // the flip lands before the first chunk kernel reads it.
        let opts = StreamOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 800, 7)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            watchdog_per_chunk: None,
            ..Default::default()
        };
        let r = stream_set_op_with(SetOpKind::Intersect, &a, &b, StreamConfig::default(), &opts)
            .unwrap();
        assert_eq!(r.result, clean.result, "retry reproduces the clean result");
        assert!(r.chunk_retries >= 1, "the poisoned chunk must retry");
        assert!(r.faults.detected >= 1);
        assert_eq!(r.degraded_chunks, 0);
    }

    #[test]
    fn hung_chunks_degrade_to_scalar_and_still_stream() {
        let (a, b) = sets(6_000);
        let clean = stream_set_op(SetOpKind::Union, &a, &b, StreamConfig::default()).unwrap();
        // A 10-cycle watchdog trips every accelerated chunk attempt; each
        // chunk is recomputed on the scalar pipeline.
        let opts = StreamOptions {
            protection: None,
            fault_plan: None,
            policy: RecoveryPolicy::DegradeToScalar { max_retries: 0 },
            watchdog_per_chunk: Some(10),
            ..Default::default()
        };
        let r =
            stream_set_op_with(SetOpKind::Union, &a, &b, StreamConfig::default(), &opts).unwrap();
        assert_eq!(r.result, clean.result);
        assert_eq!(
            r.degraded_chunks, r.chunks,
            "every chunk must come from the fallback"
        );
    }

    #[test]
    fn double_buffering_sustains_throughput() {
        // The paper's claim: constant throughput for data sets larger than
        // the local store, because prefetch overlaps execution. Allow
        // modest overhead over the in-memory kernel.
        let (a, b) = sets(50_000);
        let r = stream_set_op(SetOpKind::Intersect, &a, &b, StreamConfig::default()).unwrap();
        let in_mem = {
            let (a, b) = sets(2000);
            crate::runner::run_set_op(
                ProcModel::Dba2LsuEis { partial: true },
                SetOpKind::Intersect,
                &a,
                &b,
            )
            .unwrap()
        };
        let stream_cpe = r.total_cycles as f64 / (2.0 * 50_000.0);
        let mem_cpe = in_mem.cycles as f64 / (2.0 * 2000.0);
        assert!(
            stream_cpe < 1.6 * mem_cpe,
            "streaming overhead too high: {stream_cpe:.3} vs {mem_cpe:.3} cycles/element"
        );
        assert!(
            r.bytes_streamed >= 2 * 50_000 * 4,
            "all input must stream through the DMAC"
        );
    }
}
