//! Multi-core scaling — the paper's area-equivalence argument.
//!
//! Section 5.4: *"the number of cores of DBA_2LSU_EIS could be largely
//! increased until it occupies the same area as the Intel Q9550
//! processor. Even under pessimistic assumptions, DBA_2LSU_EIS could
//! provide an order of magnitude more cores than the Intel Q9550."* And
//! the introduction: *"The extremely low-energy design enables us to put
//! hundreds of chips on a single board without any thermal restrictions."*
//!
//! This module makes that argument measurable: a sorted-set operation is
//! partitioned into value-aligned ranges (each range's sub-results
//! concatenate exactly, as in [`crate::stream`]), every partition runs on
//! its own simulated core, and the wall-clock is the slowest core. The
//! cores share nothing — each owns its local stores, exactly the
//! shared-nothing board the paper sketches.

use crate::configs::ProcModel;
use crate::datapath::SetOpKind;
use crate::runner::{run_set_op_with, RunOptions};
use crate::sched::{run_indexed, HostSched};
use dbx_cpu::SimError;
use dbx_faults::FaultCounters;
use dbx_observe::{ArgValue, Observer, TraceSink, TrackId};

/// Result of a partitioned multi-core run.
#[derive(Debug, Clone)]
pub struct MultiCoreRun {
    /// Concatenated result (identical to a single-core run).
    pub result: Vec<u32>,
    /// Cycles of the slowest core — the parallel makespan.
    pub makespan_cycles: u64,
    /// Sum of all cores' cycles (total work).
    pub total_cycles: u64,
    /// Per-core cycle counts.
    pub per_core_cycles: Vec<u64>,
    /// Number of cores that received work.
    pub cores_used: usize,
    /// Kernel re-runs consumed by the recovery policy across all cores.
    pub retries: u32,
    /// Partitions whose result came from the degraded scalar fallback.
    pub degraded_parts: usize,
    /// Fault counters aggregated over all cores.
    pub faults: FaultCounters,
}

impl MultiCoreRun {
    /// Parallel speedup over running all partitions on one core. An empty
    /// run (no partitions received work, makespan zero) has no parallelism
    /// to speak of and reports `0.0` rather than a `0/0` NaN.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.makespan_cycles as f64
    }

    /// Throughput in M elements/s at frequency `f_mhz` for `elements`
    /// processed, using the makespan. Degenerate inputs — a zero makespan,
    /// or a frequency that is zero, negative, or non-finite — report `0.0`
    /// rather than a NaN/infinity that would poison downstream averages.
    pub fn throughput_meps(&self, elements: u64, f_mhz: f64) -> f64 {
        if self.makespan_cycles == 0 || !f_mhz.is_finite() || f_mhz <= 0.0 {
            return 0.0;
        }
        elements as f64 * f_mhz / self.makespan_cycles as f64
    }
}

/// Splits both sets into `parts` value-aligned partitions of roughly
/// equal combined size.
fn partition(
    a: &[u32],
    b: &[u32],
    parts: usize,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    let total = a.len() + b.len();
    let per_part = total.div_ceil(parts.max(1));
    let mut out = Vec::with_capacity(parts);
    let (mut pa, mut pb) = (0usize, 0usize);
    while pa < a.len() || pb < b.len() {
        // Advance a combined budget of `per_part` elements, then align on
        // a value boundary so no value straddles two partitions.
        let take = per_part.min(a.len() - pa + b.len() - pb);
        // Candidate boundary: walk both sets in merge order `take` steps.
        let (mut i, mut j) = (pa, pb);
        for _ in 0..take {
            if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
                i += 1;
            } else if j < b.len() {
                j += 1;
            }
        }
        // Boundary value: the largest consumed value; pull in any equal
        // values from the other set.
        let boundary = match (i > pa, j > pb) {
            (true, true) => a[i - 1].max(b[j - 1]),
            (true, false) => a[i - 1],
            (false, true) => b[j - 1],
            (false, false) => break,
        };
        let na = a[pa..].partition_point(|&x| x <= boundary);
        let nb = b[pb..].partition_point(|&x| x <= boundary);
        out.push((pa..pa + na, pb..pb + nb));
        pa += na;
        pb += nb;
    }
    out
}

/// One core's share of a partitioned run, with its resilience accounting.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// The partition's set-operation result.
    pub result: Vec<u32>,
    /// Cycles the core spent on the partition (batches add up).
    pub cycles: u64,
    /// Kernel re-runs consumed by the recovery policy.
    pub retries: u32,
    /// Batches whose result came from the degraded scalar fallback.
    pub degraded: usize,
    /// Fault counters aggregated over the partition's batches.
    pub faults: FaultCounters,
}

type PartRun = PartitionRun;

/// [`run_partition`] with resilience options (see
/// [`crate::runner::run_set_op_with`]); the injected fault plan strikes
/// the first batch only.
pub fn run_partition_with(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    opts: &RunOptions,
) -> Result<PartitionRun, SimError> {
    run_partition_opts(model, kind, a, b, opts)
}

fn run_partition_opts(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    opts: &RunOptions,
) -> Result<PartRun, SimError> {
    match run_set_op_with(model, kind, a, b, opts) {
        Ok(kr) => Ok(PartRun {
            result: kr.result,
            cycles: kr.cycles,
            retries: kr.retries,
            degraded: kr.degraded as usize,
            faults: kr.faults,
        }),
        Err(SimError::BadProgram(_)) if a.len() + b.len() >= 2 => {
            let halves = partition(a, b, 2);
            if halves.len() < 2 {
                return Err(SimError::BadProgram(
                    "partition does not fit a core and cannot be split further".to_string(),
                ));
            }
            let mut acc = PartRun {
                result: Vec::new(),
                cycles: 0,
                retries: 0,
                degraded: 0,
                faults: FaultCounters::default(),
            };
            let mut batch_opts = opts.clone();
            for (ra, rb) in halves {
                let r = run_partition_opts(model, kind, &a[ra], &b[rb], &batch_opts)?;
                acc.result.extend_from_slice(&r.result);
                acc.cycles += r.cycles;
                acc.retries += r.retries;
                acc.degraded += r.degraded;
                acc.faults.merge(&r.faults);
                // The injected plan fires in the first batch only.
                batch_opts.fault_plan = None;
            }
            Ok(acc)
        }
        Err(e) => Err(e),
    }
}

/// Runs one core's partition, sub-partitioning into sequential batches
/// when it exceeds the core's local store (the cycles add up — the core
/// processes its batches back to back). Also useful standalone for
/// offloading arbitrarily large set operations to a single core.
pub fn run_partition(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
) -> Result<(Vec<u32>, u64), SimError> {
    run_partition_opts(model, kind, a, b, &RunOptions::default()).map(|r| (r.result, r.cycles))
}

/// Runs every partition of a multi-core job under [`RunOptions::sched`]
/// and returns the per-core outcomes **in core order**.
///
/// The sequential path records straight into the caller's observer. The
/// parallel path cannot (an [`Observer`] is deliberately thread-local),
/// so each worker rebuilds a `RunOptions` from the `Send`-safe fields and
/// records into a fresh in-memory sink, returned alongside the run for
/// the caller to absorb in core order — per-track cycle clocks start at
/// zero in the local sink and [`Observer::absorb`] offsets them by the
/// parent's clock, which reproduces the sequential trace exactly.
fn run_core_shards(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    parts: &[(std::ops::Range<usize>, std::ops::Range<usize>)],
    opts: &RunOptions,
) -> Vec<Result<(PartRun, Option<TraceSink>), SimError>> {
    if !opts.sched.is_parallel(parts.len()) {
        return parts
            .iter()
            .enumerate()
            .map(|(idx, (ra, rb))| {
                let core_opts = RunOptions {
                    fault_plan: if idx == 0 {
                        opts.fault_plan.clone()
                    } else {
                        None
                    },
                    // Each logical core gets its own trace track so the
                    // shared-nothing board renders as parallel lanes.
                    observer: opts.observer.on_track(TrackId::Core(idx as u32)),
                    ..opts.clone()
                };
                run_partition_opts(model, kind, &a[ra.clone()], &b[rb.clone()], &core_opts)
                    .map(|r| (r, None))
            })
            .collect();
    }
    let observed = opts.observer.is_enabled();
    let fault_plan = &opts.fault_plan;
    let (protection, policy, watchdog, deadline) =
        (opts.protection, opts.policy, opts.watchdog, opts.deadline);
    let force_precise = opts.force_precise;
    let profile = opts.profile;
    run_indexed(opts.sched, parts.len(), move |idx| {
        let (ra, rb) = parts[idx].clone();
        let (observer, sink) = if observed {
            let (obs, sink) = Observer::memory();
            (obs.on_track(TrackId::Core(idx as u32)), Some(sink))
        } else {
            (Observer::default(), None)
        };
        let core_opts = RunOptions {
            protection,
            // The injected plan strikes core 0 only, as sequentially.
            fault_plan: if idx == 0 { fault_plan.clone() } else { None },
            policy,
            watchdog,
            deadline,
            observer,
            force_precise,
            profile,
            sched: HostSched::Sequential,
        };
        run_partition_opts(model, kind, &a[ra], &b[rb], &core_opts).map(|r| {
            drop(core_opts); // release the worker's observer handle
            let local = sink.map(|s| {
                std::rc::Rc::try_unwrap(s)
                    .expect("core-local observer still referenced")
                    .into_inner()
            });
            (r, local)
        })
    })
}

/// Runs a sorted-set operation across `cores` shared-nothing cores of the
/// given model. Partitions larger than a core's local store are processed
/// by that core in sequential batches.
pub fn multicore_set_op(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    cores: usize,
) -> Result<MultiCoreRun, SimError> {
    multicore_set_op_with(model, kind, a, b, cores, &RunOptions::default())
}

/// [`multicore_set_op`] with resilience options. An injected fault plan
/// strikes core 0 only (one upset, one core); the protection scheme,
/// watchdog, and recovery policy apply to every core.
///
/// With [`RunOptions::sched`] set to a parallel [`HostSched`], the
/// simulated cores run on real host threads. The merge is positional —
/// results fold and trace sinks absorb in core order — so the output,
/// every cycle count, the fault counters, and the observe trace are
/// bit-identical to the sequential path.
pub fn multicore_set_op_with(
    model: ProcModel,
    kind: SetOpKind,
    a: &[u32],
    b: &[u32],
    cores: usize,
    opts: &RunOptions,
) -> Result<MultiCoreRun, SimError> {
    assert!(cores >= 1);
    let parts = partition(a, b, cores);
    let runs = run_core_shards(model, kind, a, b, &parts, opts);
    let mut result = Vec::new();
    let mut per_core_cycles = Vec::with_capacity(parts.len());
    let mut retries = 0u32;
    let mut degraded_parts = 0usize;
    let mut faults = FaultCounters::default();
    for shard in runs {
        // Shards fold in core order; the lowest-indexed error wins, as it
        // would have in the sequential loop (which stops right there).
        let (r, local_sink) = shard?;
        if let Some(local) = local_sink {
            opts.observer.absorb(local);
        }
        result.extend_from_slice(&r.result);
        per_core_cycles.push(r.cycles);
        retries += r.retries;
        degraded_parts += r.degraded;
        faults.merge(&r.faults);
    }
    let makespan_cycles = per_core_cycles.iter().copied().max().unwrap_or(0);
    let total_cycles: u64 = per_core_cycles.iter().sum();
    if opts.observer.is_enabled() {
        let host = opts.observer.on_track(TrackId::Host);
        host.place("multicore", "parallel", makespan_cycles, || {
            vec![
                ("kind", ArgValue::from(kind.name())),
                ("model", ArgValue::from(model.name())),
                ("cores", (per_core_cycles.len() as u64).into()),
                ("total_cycles", total_cycles.into()),
                ("retries", u64::from(retries).into()),
            ]
        });
    }
    Ok(MultiCoreRun {
        result,
        makespan_cycles,
        total_cycles,
        cores_used: per_core_cycles.len(),
        per_core_cycles,
        retries,
        degraded_parts,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(n: u32) -> (Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..n).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..n).map(|i| 2 * i + (i % 2)).collect();
        (a, b)
    }

    fn reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
        let sb: std::collections::BTreeSet<u32> = b.iter().copied().collect();
        match kind {
            SetOpKind::Intersect => a.iter().copied().filter(|x| sb.contains(x)).collect(),
            SetOpKind::Difference => a.iter().copied().filter(|x| !sb.contains(x)).collect(),
            SetOpKind::Union => {
                let mut s: std::collections::BTreeSet<u32> = a.iter().copied().collect();
                s.extend(b.iter().copied());
                s.into_iter().collect()
            }
        }
    }

    #[test]
    fn partitions_cover_exactly_and_respect_values() {
        let (a, b) = sets(5000);
        let parts = partition(&a, &b, 8);
        assert!(parts.len() <= 8);
        let mut pa = 0;
        let mut pb = 0;
        for (ra, rb) in &parts {
            assert_eq!(ra.start, pa);
            assert_eq!(rb.start, pb);
            pa = ra.end;
            pb = rb.end;
        }
        assert_eq!(pa, a.len());
        assert_eq!(pb, b.len());
        // Value ranges must not interleave across partitions.
        for w in parts.windows(2) {
            let max0 = w[0].0.end.checked_sub(1).map(|i| a[i]).unwrap_or(0);
            let min1 = w[1].0.start.min(a.len() - 1);
            if !w[1].0.is_empty() {
                assert!(a[min1] > max0);
            }
        }
    }

    #[test]
    fn multicore_results_match_single_core() {
        let (a, b) = sets(6000);
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let mc =
                multicore_set_op(ProcModel::Dba2LsuEis { partial: true }, kind, &a, &b, 8).unwrap();
            assert_eq!(mc.result, reference(kind, &a, &b), "{kind:?}");
        }
    }

    #[test]
    fn speedup_is_near_linear_for_balanced_partitions() {
        let (a, b) = sets(8000);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let mc8 = multicore_set_op(model, SetOpKind::Intersect, &a, &b, 8).unwrap();
        assert_eq!(mc8.cores_used, 8);
        let s = mc8.speedup();
        assert!((6.0..8.2).contains(&s), "8-core speedup {s}");
    }

    #[test]
    fn partitioning_enables_inputs_beyond_one_local_store() {
        // 2x20000 elements exceed one core's memories but fit 16 cores.
        let (a, b) = sets(20_000);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let mc = multicore_set_op(model, SetOpKind::Intersect, &a, &b, 16).unwrap();
        assert_eq!(mc.result, reference(SetOpKind::Intersect, &a, &b));
    }

    #[test]
    fn skewed_sets_still_partition_correctly() {
        let a: Vec<u32> = (0..10_000u32).collect();
        let b: Vec<u32> = (0..100u32).map(|i| i * 97).collect();
        let mc = multicore_set_op(
            ProcModel::Dba1LsuEis { partial: true },
            SetOpKind::Difference,
            &a,
            &b,
            6,
        )
        .unwrap();
        assert_eq!(mc.result, reference(SetOpKind::Difference, &a, &b));
    }

    #[test]
    fn faulted_core_retries_while_the_rest_run_clean() {
        use crate::runner::RecoveryPolicy;
        use dbx_faults::{FaultPlan, FaultTarget, ProtectionKind};
        let (a, b) = sets(4000);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let clean = multicore_set_op(model, SetOpKind::Intersect, &a, &b, 4).unwrap();
        let opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 23, 9)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            watchdog: None,
            ..Default::default()
        };
        let mc = multicore_set_op_with(model, SetOpKind::Intersect, &a, &b, 4, &opts).unwrap();
        assert_eq!(mc.result, clean.result);
        assert_eq!(mc.retries, 1, "only the struck core retries");
        assert_eq!(mc.degraded_parts, 0);
        assert!(mc.faults.detected >= 1);
    }

    #[test]
    fn parallel_sched_matches_sequential_bit_for_bit() {
        let (a, b) = sets(6000);
        let model = ProcModel::Dba2LsuEis { partial: true };
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Union,
            SetOpKind::Difference,
        ] {
            let seq = multicore_set_op(model, kind, &a, &b, 8).unwrap();
            let opts = RunOptions {
                sched: HostSched::Parallel { threads: 4 },
                ..Default::default()
            };
            let par = multicore_set_op_with(model, kind, &a, &b, 8, &opts).unwrap();
            assert_eq!(par.result, seq.result, "{kind:?}");
            assert_eq!(par.per_core_cycles, seq.per_core_cycles, "{kind:?}");
            assert_eq!(par.makespan_cycles, seq.makespan_cycles, "{kind:?}");
            assert_eq!(par.total_cycles, seq.total_cycles, "{kind:?}");
        }
    }

    #[test]
    fn parallel_sched_preserves_fault_accounting() {
        use crate::runner::RecoveryPolicy;
        use dbx_faults::{FaultPlan, FaultTarget, ProtectionKind};
        let (a, b) = sets(4000);
        let model = ProcModel::Dba2LsuEis { partial: true };
        let mut opts = RunOptions {
            protection: Some(ProtectionKind::Parity),
            fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 23, 9)),
            policy: RecoveryPolicy::Retry { max_retries: 2 },
            watchdog: None,
            ..Default::default()
        };
        let seq = multicore_set_op_with(model, SetOpKind::Intersect, &a, &b, 4, &opts).unwrap();
        opts.sched = HostSched::Parallel { threads: 4 };
        let par = multicore_set_op_with(model, SetOpKind::Intersect, &a, &b, 4, &opts).unwrap();
        assert_eq!(par.result, seq.result);
        assert_eq!(par.retries, seq.retries, "only core 0 is struck");
        assert_eq!(par.faults.detected, seq.faults.detected);
        assert_eq!(par.per_core_cycles, seq.per_core_cycles);
    }

    #[test]
    fn empty_run_reports_zero_speedup_and_throughput() {
        let mc = multicore_set_op(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Intersect,
            &[],
            &[],
            4,
        )
        .unwrap();
        assert_eq!(mc.makespan_cycles, 0);
        assert_eq!(mc.speedup(), 0.0, "no NaN from an empty partition set");
        assert_eq!(mc.throughput_meps(0, 410.0), 0.0);
    }

    #[test]
    fn degenerate_frequency_reports_zero_throughput() {
        let (a, b) = sets(500);
        let mc = multicore_set_op(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Union,
            &a,
            &b,
            2,
        )
        .unwrap();
        assert!(mc.makespan_cycles > 0);
        assert_eq!(mc.throughput_meps(1000, 0.0), 0.0);
        assert_eq!(mc.throughput_meps(1000, f64::NAN), 0.0);
        assert_eq!(mc.throughput_meps(1000, f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn single_core_is_the_degenerate_case() {
        let (a, b) = sets(1000);
        let mc = multicore_set_op(
            ProcModel::Dba2LsuEis { partial: true },
            SetOpKind::Union,
            &a,
            &b,
            1,
        )
        .unwrap();
        assert_eq!(mc.cores_used, 1);
        assert_eq!(mc.speedup(), 1.0);
    }
}
