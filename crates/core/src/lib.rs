//! The paper's contribution: a DB-specific instruction-set extension for
//! set-oriented database primitives, plus the kernels and processor
//! configurations that exercise it.
//!
//! * [`datapath`] — the combinational circuits: 4x4 all-to-all comparator,
//!   sorting network, bitonic merge network, retire/emit logic.
//! * [`states`] — the extension's TIE states (Load/Word/Result/Store).
//! * [`ops`] — the instruction set (`LD`, `LD_P`, `SOP`, `ST_S`, `ST`,
//!   fused `STORE_SOP` / `LD_LDP_SHUFFLE`, presort and copy instructions)
//!   as a pluggable [`dbx_cpu::Extension`].
//! * [`kernels`] — programs: EIS sorted-set ops and merge-sort, and the
//!   scalar baselines of the paper's Figures 2 and 3.
//! * [`configs`] — the paper's six processor models.
//! * [`runner`] — one-call APIs that place data, run, and verify.
//! * [`progcache`] — process-wide memoization of assembled kernel
//!   programs keyed by (model, kernel, layout).
//! * [`stream`] — larger-than-local-store processing with the data
//!   prefetcher (double buffering).
//! * [`multicore`] — shared-nothing partitioned execution across many
//!   cores (the paper's area-equivalence argument).
//! * [`sched`] — the host-parallel shard scheduler: runs independent
//!   simulated shards on a work-stealing pool of host threads with
//!   deterministic, shard-ordered merge.

pub mod configs;
pub mod datapath;
pub mod kernels;
pub mod multicore;
pub mod ops;
pub mod progcache;
pub mod runner;
pub mod sched;
pub mod states;
pub mod stream;

pub use configs::ProcModel;
pub use datapath::SetOpKind;
pub use multicore::{run_partition, run_partition_with, PartitionRun};
pub use ops::{opcodes, DbExtConfig, DbExtension};
pub use runner::{
    build_processor, build_processor_with, run_set_op, run_set_op_with, run_sort, run_sort_with,
    scalar_fallback, set_preflight, KernelRun, RecoveryPolicy, RunOptions,
};
pub use sched::{run_indexed, HostSched};
pub use states::SENTINEL;
