//! The durable table store: snapshot-isolated reads over immutable
//! table generations, first-committer-wins (OCC) writes, WAL-then-apply
//! commits, periodic snapshots, and deterministic recovery.
//!
//! # Concurrency model
//!
//! The store itself is a single-writer structure (the query service
//! serializes commits through it), but *readers* never block and never
//! see partial state: [`Store::view`] hands out a [`StoreView`] — a
//! cheap clone of the `Arc<TableImage>` map plus the generation it was
//! taken at. Views are `Send`/`Sync` and stay valid forever; they just
//! go stale as the store advances.
//!
//! Writers use optimistic concurrency: [`Store::begin`] captures the
//! current generation, the transaction buffers logical ops, and
//! [`Store::commit`] fails with a *retryable* [`StorageError::Conflict`]
//! if any other transaction committed in between (first committer
//! wins). There is no partial application: commit validates every op
//! against a scratch catalog before a single WAL byte is written.
//!
//! # Durability protocol
//!
//! A commit (1) validates, (2) appends the whole transaction as ONE
//! frame to the open WAL segment (so the frame CRC covers the commit
//! and torn commits vanish atomically), (3) fsyncs the segment, then
//! (4) applies in memory and bumps the generation by one. A crash between (2) and (3) — or a dropped
//! fsync at (3) — loses at most the uncommitted suffix, which is
//! exactly what [`Store::open`] truncates away on replay. Every
//! `snapshot_every` commits the store writes a `snap-<lsn>.img`
//! checkpoint and rotates the WAL segment; segments are never pruned
//! (see the [`crate::wal`] docs for why).

use crate::disk::Disk;
use crate::record::{self, Columns, TableImage, TableOp, WalRecord};
use crate::snapshot::{snapshot_name, Snapshot};
use crate::wal::Wal;
use crate::StorageError;
use dbx_observe::{ArgValue, Observer, TrackId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fixed span-cost model: every storage span costs `SPAN_BASE + bytes`
/// host cycles, so traces are deterministic in the cycle domain.
const SPAN_BASE: u64 = 64;

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Take a snapshot (and rotate the WAL segment) every N commits.
    /// `0` disables snapshotting.
    pub snapshot_every: u64,
    /// Trace sink for `wal.*` / `snapshot.*` spans and storage
    /// counters. Disabled by default.
    pub observer: Observer,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            snapshot_every: 0,
            observer: Observer::disabled(),
        }
    }
}

/// What recovery found and repaired (kept for inspection after
/// [`Store::open`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot recovery started from (0 = empty state).
    pub snapshot_lsn: u64,
    /// Valid WAL frames scanned during replay.
    pub frames_replayed: u64,
    /// Damaged segment tails truncated away.
    pub frames_truncated: u64,
    /// Damaged snapshot files that were skipped (newest first).
    pub snapshots_skipped: Vec<String>,
    /// Human-readable descriptions of WAL damage repaired on open.
    pub wal_damage: Vec<String>,
}

/// A snapshot-isolated read view: the catalog exactly as of
/// [`StoreView::generation`], immutable and shareable across threads.
#[derive(Debug, Clone)]
pub struct StoreView {
    generation: u64,
    tables: BTreeMap<String, Arc<TableImage>>,
}

impl StoreView {
    /// The generation (last applied LSN) this view was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a table image.
    pub fn table(&self, name: &str) -> Option<&Arc<TableImage>> {
        self.tables.get(name)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Deterministic digest of the catalog (see [`digest_tables`]).
    pub fn digest(&self) -> u32 {
        digest_tables(&self.tables)
    }
}

/// A pending optimistic transaction: buffered logical ops plus the
/// generation it was begun at.
#[derive(Debug, Clone)]
pub struct Txn {
    base_gen: u64,
    ops: Vec<TableOp>,
}

impl Txn {
    /// The generation this transaction read from.
    pub fn base_generation(&self) -> u64 {
        self.base_gen
    }

    /// Number of buffered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Buffers a table creation.
    pub fn create_table(&mut self, name: &str, columns: Columns) -> &mut Self {
        self.ops.push(TableOp::Create {
            name: name.to_string(),
            columns,
        });
        self
    }

    /// Buffers a row-batch append.
    pub fn append_rows(&mut self, name: &str, rows: Columns) -> &mut Self {
        self.ops.push(TableOp::Append {
            name: name.to_string(),
            rows,
        });
        self
    }

    /// Buffers a table drop.
    pub fn drop_table(&mut self, name: &str) -> &mut Self {
        self.ops.push(TableOp::Drop {
            name: name.to_string(),
        });
        self
    }

    /// Buffers a pre-built op (workload generators).
    pub fn push(&mut self, op: TableOp) -> &mut Self {
        self.ops.push(op);
        self
    }
}

/// Deterministic digest of a catalog: CRC-32 of its canonical
/// serialization (table names and columns, *not* LSNs), so two stores
/// that recovered to the same logical state digest identically on any
/// host.
pub fn digest_tables(tables: &BTreeMap<String, Arc<TableImage>>) -> u32 {
    let mut bytes = Vec::new();
    record::put_tables(&mut bytes, tables);
    crate::crc::crc32(&bytes)
}

/// The durable table store over a [`Disk`].
#[derive(Debug)]
pub struct Store<D: Disk> {
    disk: D,
    wal: Wal,
    generation: u64,
    tables: BTreeMap<String, Arc<TableImage>>,
    opts: StoreOptions,
    obs: Observer,
    commits_since_snapshot: u64,
    recovery: RecoveryReport,
    last_commit_pos: Option<(String, usize)>,
}

impl<D: Disk> Store<D> {
    /// Opens the store, running deterministic recovery: load the newest
    /// valid snapshot (skipping damaged ones), replay the WAL suffix,
    /// truncate the log at the first corrupt frame.
    pub fn open(mut disk: D, opts: StoreOptions) -> Result<Self, StorageError> {
        let obs = opts.observer.on_track(TrackId::Host);
        let mut report = RecoveryReport::default();

        // 1. Newest valid snapshot, or the empty state.
        let (snap, skipped) = Snapshot::load_latest(&disk);
        report.snapshots_skipped = skipped;
        let (mut tables, snap_lsn) = match snap {
            Some(s) => (s.tables, s.lsn),
            None => (BTreeMap::new(), 0),
        };
        report.snapshot_lsn = snap_lsn;
        let snap_bytes = if snap_lsn > 0 {
            disk.read(&snapshot_name(snap_lsn))
                .map(|b| b.len())
                .unwrap_or(0) as u64
        } else {
            0
        };
        obs.place("snapshot.load", "storage", SPAN_BASE + snap_bytes, || {
            vec![
                ("lsn", ArgValue::U64(snap_lsn)),
                ("bytes", ArgValue::U64(snap_bytes)),
            ]
        });

        // 2. Replay the WAL suffix, repairing torn tails.
        let replay = Wal::replay(&mut disk, snap_lsn)?;
        report.frames_replayed = replay.frames_replayed;
        report.frames_truncated = replay.frames_truncated;
        report.wal_damage = replay.damage;
        let mut generation = snap_lsn;
        for rec in &replay.records {
            for op in &rec.ops {
                apply_op(&mut tables, op)?;
            }
            generation = rec.lsn;
        }
        obs.place(
            "wal.replay",
            "storage",
            SPAN_BASE + replay.frames_replayed * SPAN_BASE,
            || {
                vec![
                    ("frames", ArgValue::U64(replay.frames_replayed)),
                    ("truncated", ArgValue::U64(replay.frames_truncated)),
                    ("generation", ArgValue::U64(generation)),
                ]
            },
        );
        obs.counter("storage.frames_replayed", replay.frames_replayed as f64);
        obs.counter("storage.frames_truncated", replay.frames_truncated as f64);

        Ok(Store {
            disk,
            wal: Wal::new(replay.last_segment.max(1)),
            generation,
            tables,
            opts,
            obs,
            commits_since_snapshot: 0,
            recovery: report,
            last_commit_pos: None,
        })
    }

    /// Where the most recent commit's frame landed: `(segment name, end
    /// offset within the segment)`. Crash campaigns use this to map
    /// byte offsets back to commit boundaries.
    pub fn last_commit_position(&self) -> Option<&(String, usize)> {
        self.last_commit_pos.as_ref()
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current generation (last applied LSN).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Takes a snapshot-isolated view of the catalog.
    pub fn view(&self) -> StoreView {
        StoreView {
            generation: self.generation,
            tables: self.tables.clone(),
        }
    }

    /// Begins an optimistic transaction at the current generation.
    pub fn begin(&self) -> Txn {
        Txn {
            base_gen: self.generation,
            ops: Vec::new(),
        }
    }

    /// Commits a transaction: OCC check, validate, WAL, fsync, apply.
    /// Returns the new generation. An empty transaction commits to the
    /// current generation without touching the log.
    pub fn commit(&mut self, txn: Txn) -> Result<u64, StorageError> {
        if txn.base_gen != self.generation {
            return Err(StorageError::Conflict {
                base_gen: txn.base_gen,
                current_gen: self.generation,
            });
        }
        if txn.ops.is_empty() {
            return Ok(self.generation);
        }

        // Validate every op against a scratch catalog first — a commit
        // either fully applies or leaves no trace in the log.
        let mut scratch = self.tables.clone();
        for op in &txn.ops {
            apply_op(&mut scratch, op)?;
        }

        // WAL: the whole transaction is one frame (one CRC — a torn
        // commit vanishes atomically), one fsync per commit.
        let n_ops = txn.ops.len() as u64;
        let rec = WalRecord {
            lsn: self.generation + 1,
            ops: txn.ops,
        };
        let bytes = self.wal.append(&mut self.disk, &rec)? as u64;
        self.wal.sync(&mut self.disk)?;
        let seg = self.wal.open_segment_name();
        let end = self.disk.read(&seg).map(|b| b.len()).unwrap_or(0);
        self.last_commit_pos = Some((seg, end));
        self.obs
            .place("wal.append", "storage", SPAN_BASE + bytes, || {
                vec![
                    ("ops", ArgValue::U64(n_ops)),
                    ("bytes", ArgValue::U64(bytes)),
                ]
            });

        // Apply.
        self.tables = scratch;
        self.generation += 1;
        self.commits_since_snapshot += 1;
        if self.opts.snapshot_every > 0 && self.commits_since_snapshot >= self.opts.snapshot_every {
            self.take_snapshot()?;
        }
        Ok(self.generation)
    }

    /// Writes a checkpoint of the current catalog and rotates the WAL
    /// segment. Normally driven by `snapshot_every`, public for tests
    /// and shutdown paths.
    pub fn take_snapshot(&mut self) -> Result<(), StorageError> {
        let snap = Snapshot {
            lsn: self.generation,
            tables: self.tables.clone(),
        };
        let image_len = snap.encode().len() as u64;
        snap.write(&mut self.disk)?;
        self.wal.rotate(&mut self.disk)?;
        self.commits_since_snapshot = 0;
        self.obs
            .place("snapshot.write", "storage", SPAN_BASE + image_len, || {
                vec![
                    ("lsn", ArgValue::U64(snap.lsn)),
                    ("bytes", ArgValue::U64(image_len)),
                ]
            });
        Ok(())
    }

    /// Deterministic digest of the current catalog.
    pub fn state_digest(&self) -> u32 {
        digest_tables(&self.tables)
    }

    /// The underlying disk (campaigns clone it to simulate crashes).
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable access to the disk (fault plans are armed through this).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes the store, returning the disk.
    pub fn into_disk(self) -> D {
        self.disk
    }
}

/// Applies one logical op to a catalog, validating it fully. Used both
/// by commit (against a scratch copy) and by recovery replay.
fn apply_op(
    tables: &mut BTreeMap<String, Arc<TableImage>>,
    op: &TableOp,
) -> Result<(), StorageError> {
    match op {
        TableOp::Create { name, columns } => {
            if tables.contains_key(name) {
                return Err(StorageError::DuplicateTable { name: name.clone() });
            }
            check_equal_lengths(name, columns)?;
            tables.insert(
                name.clone(),
                Arc::new(TableImage {
                    name: name.clone(),
                    columns: columns.clone(),
                }),
            );
        }
        TableOp::Append { name, rows } => {
            let img = tables
                .get(name)
                .ok_or_else(|| StorageError::UnknownTable { name: name.clone() })?;
            if img.columns.len() != rows.len()
                || img
                    .columns
                    .iter()
                    .zip(rows.iter())
                    .any(|((a, _), (b, _))| a != b)
            {
                return Err(StorageError::ColumnMismatch {
                    table: name.clone(),
                    expected: img.columns.iter().map(|(n, _)| n.clone()).collect(),
                    got: rows.iter().map(|(n, _)| n.clone()).collect(),
                });
            }
            check_equal_lengths(name, rows)?;
            let mut columns = img.columns.clone();
            for ((_, dst), (_, src)) in columns.iter_mut().zip(rows.iter()) {
                dst.extend_from_slice(src);
            }
            tables.insert(
                name.clone(),
                Arc::new(TableImage {
                    name: name.clone(),
                    columns,
                }),
            );
        }
        TableOp::Drop { name } => {
            if tables.remove(name).is_none() {
                return Err(StorageError::UnknownTable { name: name.clone() });
            }
        }
    }
    Ok(())
}

fn check_equal_lengths(table: &str, cols: &Columns) -> Result<(), StorageError> {
    if let Some((_, first)) = cols.first() {
        for (cname, vals) in cols {
            if vals.len() != first.len() {
                return Err(StorageError::ColumnLengthMismatch {
                    table: table.to_string(),
                    column: cname.clone(),
                    expected: first.len(),
                    got: vals.len(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn open_empty() -> Store<MemDisk> {
        Store::open(MemDisk::new(), StoreOptions::default()).unwrap()
    }

    fn cols(vals: &[u32]) -> Columns {
        vec![("k".into(), vals.to_vec())]
    }

    #[test]
    fn create_append_drop_round_trip_through_crash() {
        let mut store = open_empty();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1, 2]));
        store.commit(txn).unwrap();
        let mut txn = store.begin();
        txn.append_rows("t", cols(&[3]));
        store.commit(txn).unwrap();
        let digest = store.state_digest();
        assert_eq!(store.generation(), 2);

        let mut disk = store.into_disk();
        disk.crash();
        let store2 = Store::open(disk, StoreOptions::default()).unwrap();
        assert_eq!(store2.generation(), 2);
        assert_eq!(store2.state_digest(), digest);
        assert_eq!(
            store2.view().table("t").unwrap().columns,
            vec![("k".to_string(), vec![1, 2, 3])]
        );
    }

    #[test]
    fn occ_first_committer_wins() {
        let mut store = open_empty();
        let mut a = store.begin();
        a.create_table("a", cols(&[1]));
        let mut b = store.begin();
        b.create_table("b", cols(&[2]));
        store.commit(a).unwrap();
        let err = store.commit(b).unwrap_err();
        match err {
            StorageError::Conflict {
                base_gen,
                current_gen,
            } => {
                assert_eq!(base_gen, 0);
                assert_eq!(current_gen, 1);
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
        assert!(err.is_retryable());
        // Retry from the new generation succeeds.
        let mut b2 = store.begin();
        b2.create_table("b", cols(&[2]));
        store.commit(b2).unwrap();
        assert_eq!(store.generation(), 2);
    }

    #[test]
    fn views_are_snapshot_isolated() {
        let mut store = open_empty();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1]));
        store.commit(txn).unwrap();
        let view = store.view();
        let mut txn = store.begin();
        txn.append_rows("t", cols(&[2]));
        store.commit(txn).unwrap();
        // The old view still sees one row; a fresh view sees two.
        assert_eq!(view.table("t").unwrap().n_rows(), 1);
        assert_eq!(store.view().table("t").unwrap().n_rows(), 2);
        assert_eq!(view.generation(), 1);
    }

    #[test]
    fn view_survives_threads() {
        let mut store = open_empty();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[7, 8, 9]));
        store.commit(txn).unwrap();
        let view = store.view();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = view.clone();
                std::thread::spawn(move || v.table("t").unwrap().columns[0].1.iter().sum::<u32>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 24);
        }
    }

    #[test]
    fn validation_failures_leave_no_trace() {
        let mut store = open_empty();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1]));
        store.commit(txn).unwrap();
        let wal_before = store.disk().read(&store.wal.open_segment_name()).unwrap();

        // Duplicate create.
        let mut txn = store.begin();
        txn.create_table("t", cols(&[9]));
        assert!(matches!(
            store.commit(txn),
            Err(StorageError::DuplicateTable { .. })
        ));
        // Append to a missing table.
        let mut txn = store.begin();
        txn.append_rows("missing", cols(&[1]));
        assert!(matches!(
            store.commit(txn),
            Err(StorageError::UnknownTable { .. })
        ));
        // Wrong column set.
        let mut txn = store.begin();
        txn.append_rows("t", vec![("other".into(), vec![1])]);
        assert!(matches!(
            store.commit(txn),
            Err(StorageError::ColumnMismatch { .. })
        ));
        // Ragged columns.
        let mut txn = store.begin();
        txn.create_table("r", vec![("a".into(), vec![1]), ("b".into(), vec![1, 2])]);
        assert!(matches!(
            store.commit(txn),
            Err(StorageError::ColumnLengthMismatch { .. })
        ));
        // Drop of a missing table.
        let mut txn = store.begin();
        txn.drop_table("missing");
        assert!(matches!(
            store.commit(txn),
            Err(StorageError::UnknownTable { .. })
        ));

        // Generation unchanged, WAL byte-identical.
        assert_eq!(store.generation(), 1);
        assert_eq!(
            store.disk().read(&store.wal.open_segment_name()).unwrap(),
            wal_before
        );
    }

    #[test]
    fn snapshot_cadence_rotates_and_speeds_recovery() {
        let mut store = Store::open(
            MemDisk::new(),
            StoreOptions {
                snapshot_every: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[0]));
        store.commit(txn).unwrap();
        for i in 1..=5u32 {
            let mut txn = store.begin();
            txn.append_rows("t", cols(&[i]));
            store.commit(txn).unwrap();
        }
        let digest = store.state_digest();
        let disk = store.into_disk();
        // 6 commits at cadence 2 → snapshots at lsn 2, 4, 6.
        assert!(disk.exists(&snapshot_name(6)));
        let store2 = Store::open(disk, StoreOptions::default()).unwrap();
        assert_eq!(store2.recovery().snapshot_lsn, 6);
        assert_eq!(store2.recovery().frames_replayed, 0);
        assert_eq!(store2.state_digest(), digest);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_replay() {
        let mut store = Store::open(
            MemDisk::new(),
            StoreOptions {
                snapshot_every: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1]));
        store.commit(txn).unwrap();
        let mut txn = store.begin();
        txn.append_rows("t", cols(&[2]));
        store.commit(txn).unwrap();
        let mut txn = store.begin();
        txn.append_rows("t", cols(&[3]));
        store.commit(txn).unwrap();
        let digest = store.state_digest();
        let mut disk = store.into_disk();
        // Truncate the snapshot mid-body: recovery must ignore it and
        // rebuild the same state from the full WAL chain.
        let name = snapshot_name(3);
        let mut bytes = disk.read(&name).unwrap();
        bytes.truncate(bytes.len() - 3);
        disk.set_file(&name, dbx_faults::StorageFileClass::Snapshot, bytes);
        let store2 = Store::open(disk, StoreOptions::default()).unwrap();
        assert_eq!(store2.recovery().snapshot_lsn, 0);
        assert_eq!(store2.recovery().snapshots_skipped.len(), 1);
        assert_eq!(store2.recovery().frames_replayed, 3);
        assert_eq!(store2.state_digest(), digest);
        assert_eq!(store2.generation(), 3);
    }

    #[test]
    fn dropped_fsync_loses_exactly_the_lying_commit() {
        use dbx_faults::StorageFaultPlan;
        let mut store = open_empty();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1]));
        store.commit(txn).unwrap();
        let digest_committed = store.state_digest();

        // Arm: drop the fsync of the *next* commit. WAL I/O so far:
        // one append + one fsync = indices 0, 1; next append is 2,
        // next fsync is 3.
        store
            .disk_mut()
            .set_fault_plan(StorageFaultPlan::new().with_dropped_wal_fsync(3));
        let mut txn = store.begin();
        txn.append_rows("t", cols(&[2]));
        store.commit(txn).unwrap(); // the fsync lied
        let mut disk = store.into_disk();
        disk.crash();
        let store2 = Store::open(disk, StoreOptions::default()).unwrap();
        // The lying commit is gone; the durable prefix survives intact.
        assert_eq!(store2.state_digest(), digest_committed);
        assert_eq!(store2.generation(), 1);
    }

    #[test]
    fn observer_records_storage_spans_and_counters() {
        let (obs, sink) = Observer::memory();
        let mut store = Store::open(
            MemDisk::new(),
            StoreOptions {
                snapshot_every: 1,
                observer: obs.clone(),
            },
        )
        .unwrap();
        let mut txn = store.begin();
        txn.create_table("t", cols(&[1]));
        store.commit(txn).unwrap();
        drop(store);
        let sink = sink.borrow();
        let names: Vec<String> = sink.spans_of("storage").map(|s| s.name.clone()).collect();
        assert!(names.contains(&"snapshot.load".to_string()));
        assert!(names.contains(&"wal.replay".to_string()));
        assert!(names.contains(&"wal.append".to_string()));
        assert!(names.contains(&"snapshot.write".to_string()));
        assert_eq!(
            sink.counter_value(TrackId::Host, "storage.frames_replayed"),
            Some(0.0)
        );
    }

    #[test]
    fn digest_ignores_generation() {
        // Two stores with the same logical state but different histories
        // digest identically.
        let mut a = open_empty();
        let mut txn = a.begin();
        txn.create_table("t", cols(&[1, 2]));
        a.commit(txn).unwrap();

        let mut b = open_empty();
        let mut txn = b.begin();
        txn.create_table("t", cols(&[1]));
        b.commit(txn).unwrap();
        let mut txn = b.begin();
        txn.append_rows("t", cols(&[2]));
        b.commit(txn).unwrap();

        assert_ne!(a.generation(), b.generation());
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
