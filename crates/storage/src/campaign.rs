//! Seeded crash-recovery campaigns: the machinery behind the CI
//! `serve-chaos` job and the proptest invariants.
//!
//! A campaign (1) generates a deterministic transaction workload from a
//! seed, (2) runs it cleanly once to learn the digest of every
//! committed prefix and where each commit's frame landed in the WAL,
//! then (3) attacks the log from several directions:
//!
//! * **Kill at every WAL byte offset** — for each `k`, resurrect a disk
//!   whose log is durable only up to byte `k`, recover, and check the
//!   recovered state digest equals the digest of the longest committed
//!   prefix whose frames fit in `k` bytes. Run both without snapshots
//!   (single segment) and with a snapshot cadence (cutting the newest
//!   segment).
//! * **Targeted faults** — a torn write or bit flip inside a seeded
//!   commit's frame, a dropped fsync on the final commit, a truncated
//!   snapshot image: each has an exactly predictable recovered state.
//! * **Seeded fault storms** — random fault plans from
//!   [`StorageFaultPlan::seeded`]; recovery must still land on *some*
//!   committed prefix and be idempotent (recovering twice changes
//!   nothing).
//!
//! Every recovered digest is folded into [`CampaignReport::digest`], so
//! two hosts running the same seed must produce bit-identical reports.

use crate::crc::crc32_update;
use crate::disk::{Disk, MemDisk};
use crate::record::TableOp;
use crate::store::{Store, StoreOptions};
use crate::StorageError;
use dbx_faults::{StorageFaultPlan, StorageFileClass, XorShift64};
use std::collections::BTreeSet;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for the workload and all fault choices.
    pub seed: u64,
    /// Number of transactions in the workload.
    pub commits: usize,
    /// Snapshot cadence used by the snapshot-enabled passes.
    pub snapshot_every: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x0DBA_51DE,
            commits: 14,
            snapshot_every: 4,
        }
    }
}

/// What a campaign did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The seed everything was derived from.
    pub seed: u64,
    /// Byte offsets the kill-sweep recovered from.
    pub offsets_tested: usize,
    /// Targeted + storm scenarios run.
    pub scenarios_run: usize,
    /// Invariant violations (empty on a passing campaign).
    pub failures: Vec<String>,
    /// CRC-32 over every recovered state digest, in order: two hosts
    /// running the same seed must agree on this value bit-for-bit.
    pub digest: u32,
}

impl CampaignReport {
    /// True when every recovery matched its predicted state.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Generates a deterministic, always-valid transaction workload: every
/// table uses the single-column schema `k`, so appends never mismatch,
/// and existence is tracked so creates/drops never conflict.
pub fn generate_commits(seed: u64, n: usize) -> Vec<Vec<TableOp>> {
    const POOL: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut rng = XorShift64::new(seed | 1);
    let mut exists: BTreeSet<&str> = BTreeSet::new();
    let mut commits = Vec::with_capacity(n);
    for _ in 0..n {
        let n_ops = 1 + rng.below(2) as usize;
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let t = POOL[rng.below(POOL.len() as u64) as usize];
            let values: Vec<u32> = (0..1 + rng.below(3))
                .map(|_| (rng.next_u64() & 0xFFFF) as u32)
                .collect();
            if exists.contains(t) {
                if rng.below(3) == 2 {
                    exists.remove(t);
                    ops.push(TableOp::Drop {
                        name: t.to_string(),
                    });
                } else {
                    ops.push(TableOp::Append {
                        name: t.to_string(),
                        rows: vec![("k".to_string(), values)],
                    });
                }
            } else {
                exists.insert(t);
                ops.push(TableOp::Create {
                    name: t.to_string(),
                    columns: vec![("k".to_string(), values)],
                });
            }
        }
        commits.push(ops);
    }
    commits
}

/// One clean execution of the workload: per-commit digests, frame
/// positions, and the final durable disk.
struct CleanRun {
    /// `checkpoints[i]` = state digest after `i` commits (`[0]` = empty).
    checkpoints: Vec<u32>,
    /// Per commit: `(segment name, end offset of its frame)`.
    positions: Vec<(String, usize)>,
    /// The disk after the full workload (everything fsynced).
    disk: MemDisk,
}

fn run_clean(
    commits: &[Vec<TableOp>],
    snapshot_every: u64,
    plan: Option<StorageFaultPlan>,
) -> Result<CleanRun, StorageError> {
    let mut disk = MemDisk::new();
    if let Some(p) = plan {
        disk.set_fault_plan(p);
    }
    let mut store = Store::open(
        disk,
        StoreOptions {
            snapshot_every,
            ..Default::default()
        },
    )?;
    let mut checkpoints = vec![store.state_digest()];
    let mut positions = Vec::with_capacity(commits.len());
    for batch in commits {
        let mut txn = store.begin();
        for op in batch {
            txn.push(op.clone());
        }
        store.commit(txn)?;
        checkpoints.push(store.state_digest());
        positions.push(store.last_commit_position().expect("committed").clone());
    }
    Ok(CleanRun {
        checkpoints,
        positions,
        disk: store.into_disk(),
    })
}

/// Folds a recovered digest into the campaign digest.
fn fold(acc: u32, d: u32) -> u32 {
    crc32_update(acc, &d.to_le_bytes())
}

/// Runs the full campaign for one seed. Deterministic: same config in,
/// same report out, on any host.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let commits = generate_commits(cfg.seed, cfg.commits.max(2));
    let n = commits.len();
    let mut rng = XorShift64::new(cfg.seed.rotate_left(17) | 1);
    let mut failures = Vec::new();
    let mut acc = !0u32;
    let mut offsets_tested = 0usize;
    let mut scenarios_run = 0usize;

    // Pass 1 + 2: kill at every byte offset of the newest segment,
    // without and with snapshots.
    for snapshot_every in [0, cfg.snapshot_every.max(2)] {
        let clean = match run_clean(&commits, snapshot_every, None) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("clean run (cadence {snapshot_every}) failed: {e}"));
                continue;
            }
        };
        let (last_seg, _) = clean.positions.last().expect("n >= 2").clone();
        let image = clean
            .disk
            .durable_image(&last_seg)
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        // Snapshots survive the kill (only the newest WAL segment is
        // cut), so everything up to the newest snapshot LSN is safe
        // even if its frames sat in the segment being cut.
        let snap_lsn = clean
            .disk
            .list()
            .iter()
            .filter_map(|n| crate::snapshot::parse_snapshot_name(n))
            .max()
            .unwrap_or(0) as usize;
        for k in 0..=image.len() {
            // Resurrect: all files at their durable images, except the
            // newest segment which died k bytes in.
            let mut d = clean.disk.clone();
            d.crash();
            d.set_file(&last_seg, StorageFileClass::Wal, image[..k].to_vec());
            // Predicted survivor: the newest snapshot, or the last
            // commit in an older segment, or the last commit in this
            // segment whose frame lies fully inside k bytes — whichever
            // reaches furthest.
            let mut want_idx = snap_lsn;
            for (i, (seg, end)) in clean.positions.iter().enumerate() {
                if *seg != last_seg || *end <= k {
                    want_idx = want_idx.max(i + 1);
                }
            }
            let want = clean.checkpoints[want_idx];
            match Store::open(d, StoreOptions::default()) {
                Ok(s) => {
                    let got = s.state_digest();
                    if got != want {
                        failures.push(format!(
                            "kill at offset {k}/{} (cadence {snapshot_every}): digest {got:#010x}, expected {want:#010x}",
                            image.len()
                        ));
                    }
                    acc = fold(acc, got);
                }
                Err(e) => failures.push(format!(
                    "kill at offset {k} (cadence {snapshot_every}): recovery failed: {e}"
                )),
            }
            offsets_tested += 1;
        }
    }

    // Pass 3: targeted faults with exactly predictable outcomes. All
    // run without snapshots so WAL I/O indices are just 2*commit
    // (append) and 2*commit+1 (fsync).
    let clean = match run_clean(&commits, 0, None) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("clean run failed: {e}"));
            return CampaignReport {
                seed: cfg.seed,
                offsets_tested,
                scenarios_run,
                failures,
                digest: acc ^ !0u32,
            };
        }
    };
    let targeted = |plan: StorageFaultPlan,
                    expect_idx: usize,
                    what: &str,
                    failures: &mut Vec<String>,
                    acc: &mut u32| {
        match run_clean(&commits, 0, Some(plan)) {
            Ok(run) => {
                let mut disk = run.disk;
                disk.crash();
                match Store::open(disk, StoreOptions::default()) {
                    Ok(s) => {
                        let got = s.state_digest();
                        let want = clean.checkpoints[expect_idx];
                        if got != want {
                            failures.push(format!(
                                "{what}: digest {got:#010x}, expected checkpoint {expect_idx} ({want:#010x})"
                            ));
                        }
                        *acc = fold(*acc, got);
                    }
                    Err(e) => failures.push(format!("{what}: recovery failed: {e}")),
                }
            }
            Err(e) => failures.push(format!("{what}: workload failed: {e}")),
        }
    };

    // Torn write inside commit j's frame: commits 0..j survive.
    let j = rng.below(n as u64) as usize;
    let keep = rng.below(8) as usize;
    targeted(
        StorageFaultPlan::new().with_torn_wal_write(2 * j as u64, keep),
        j,
        &format!("torn write in commit {j} (keep {keep})"),
        &mut failures,
        &mut acc,
    );
    scenarios_run += 1;

    // Bit flip inside commit j's frame: same prediction.
    let j = rng.below(n as u64) as usize;
    let (byte, bit) = (rng.below(64) as usize, rng.below(8) as u8);
    targeted(
        StorageFaultPlan::new().with_wal_bit_flip(2 * j as u64, byte, bit),
        j,
        &format!("bit flip in commit {j} (byte {byte}, bit {bit})"),
        &mut failures,
        &mut acc,
    );
    scenarios_run += 1;

    // Dropped fsync on the final commit: it alone is lost.
    targeted(
        StorageFaultPlan::new().with_dropped_wal_fsync(2 * n as u64 - 1),
        n - 1,
        "dropped fsync on the final commit",
        &mut failures,
        &mut acc,
    );
    scenarios_run += 1;

    // Truncated snapshot: recovery must skip the damaged image and
    // rebuild the full final state from the (never-pruned) WAL chain.
    {
        let cadence = cfg.snapshot_every.max(2);
        let n_snaps = (n as u64) / cadence;
        if n_snaps > 0 {
            let keep = 4 + rng.below(20) as usize;
            let plan = StorageFaultPlan::new().with_truncated_snapshot(2 * n_snaps - 1, keep);
            match run_clean(&commits, cadence, Some(plan)) {
                Ok(run) => {
                    let mut disk = run.disk;
                    disk.crash();
                    match Store::open(disk, StoreOptions::default()) {
                        Ok(s) => {
                            let got = s.state_digest();
                            let want = *clean.checkpoints.last().unwrap();
                            if got != want {
                                failures.push(format!(
                                    "truncated snapshot (keep {keep}): digest {got:#010x}, expected final state {want:#010x}"
                                ));
                            }
                            if s.recovery().snapshots_skipped.is_empty() {
                                failures.push(
                                    "truncated snapshot: recovery did not report a skipped snapshot"
                                        .to_string(),
                                );
                            }
                            acc = fold(acc, got);
                        }
                        Err(e) => {
                            failures.push(format!("truncated snapshot: recovery failed: {e}"))
                        }
                    }
                }
                Err(e) => failures.push(format!("truncated snapshot: workload failed: {e}")),
            }
            scenarios_run += 1;
        }
    }

    // Pass 4: seeded fault storms. Recovery must land on *some*
    // committed prefix, and recovering again must be a fixed point.
    let prefix_digests: BTreeSet<u32> = clean.checkpoints.iter().copied().collect();
    let snap_prefixes: BTreeSet<u32> = match run_clean(&commits, cfg.snapshot_every.max(2), None) {
        Ok(c) => c.checkpoints.iter().copied().collect(),
        Err(_) => prefix_digests.clone(),
    };
    for storm in 0..3u64 {
        let storm_seed = cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(storm + 1));
        let plan = StorageFaultPlan::seeded(storm_seed, 4, 2 * n as u64, 64);
        let cadence = if storm % 2 == 0 {
            0
        } else {
            cfg.snapshot_every.max(2)
        };
        let valid = if cadence == 0 {
            &prefix_digests
        } else {
            &snap_prefixes
        };
        match run_clean(&commits, cadence, Some(plan)) {
            Ok(run) => {
                let mut disk = run.disk;
                disk.crash();
                match Store::open(disk, StoreOptions::default()) {
                    Ok(s) => {
                        let got = s.state_digest();
                        if !valid.contains(&got) {
                            failures.push(format!(
                                "storm {storm}: digest {got:#010x} is not any committed prefix"
                            ));
                        }
                        // Idempotency: a second recovery of the repaired
                        // disk must land on the same state.
                        let gen = s.generation();
                        let disk2 = s.into_disk();
                        match Store::open(disk2, StoreOptions::default()) {
                            Ok(s2) => {
                                if s2.state_digest() != got || s2.generation() != gen {
                                    failures.push(format!(
                                        "storm {storm}: second recovery diverged ({:#010x} vs {got:#010x})",
                                        s2.state_digest()
                                    ));
                                }
                            }
                            Err(e) => {
                                failures.push(format!("storm {storm}: second recovery failed: {e}"))
                            }
                        }
                        acc = fold(acc, got);
                    }
                    Err(e) => failures.push(format!("storm {storm}: recovery failed: {e}")),
                }
            }
            Err(e) => failures.push(format!("storm {storm}: workload failed: {e}")),
        }
        scenarios_run += 1;
    }

    CampaignReport {
        seed: cfg.seed,
        offsets_tested,
        scenarios_run,
        failures,
        digest: acc ^ !0u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_valid() {
        let a = generate_commits(7, 20);
        let b = generate_commits(7, 20);
        assert_eq!(a, b);
        assert_ne!(a, generate_commits(8, 20));
        // Valid = a clean run commits every transaction.
        let run = run_clean(&a, 3, None).unwrap();
        assert_eq!(run.checkpoints.len(), 21);
    }

    #[test]
    fn default_campaign_passes() {
        let report = run_campaign(&CampaignConfig::default());
        assert!(report.ok(), "failures: {:#?}", report.failures);
        assert!(report.offsets_tested > 0);
        assert!(report.scenarios_run >= 6);
    }

    #[test]
    fn campaign_digest_is_reproducible() {
        let cfg = CampaignConfig {
            seed: 1337,
            commits: 8,
            snapshot_every: 3,
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert!(a.ok(), "failures: {:#?}", a.failures);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_histories() {
        let a = run_campaign(&CampaignConfig {
            seed: 11,
            commits: 6,
            snapshot_every: 2,
        });
        let b = run_campaign(&CampaignConfig {
            seed: 90210,
            commits: 6,
            snapshot_every: 2,
        });
        assert!(a.ok(), "failures: {:#?}", a.failures);
        assert!(b.ok(), "failures: {:#?}", b.failures);
        assert_ne!(a.digest, b.digest);
    }
}
