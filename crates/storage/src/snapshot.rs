//! Periodic table snapshots: a checkpoint of the full catalog at a
//! known LSN, so recovery replays a WAL suffix instead of the whole
//! history.
//!
//! File layout (all little-endian):
//!
//! ```text
//! | magic "DBXSNAP1": 8 bytes | body_len: u32 | crc32(body): u32 | body |
//! ```
//!
//! where `body = lsn: u64 | n_tables: u32 | tables…` (see
//! [`crate::record`] for the table wire form). Files are named
//! `snap-<lsn>.img` with a 16-digit zero-padded LSN so lexicographic
//! order is LSN order.
//!
//! Snapshots are written to a fresh file and fsynced; the WAL is never
//! pruned, so a snapshot that turns out torn, bit-flipped, or
//! truncated at recovery time is simply skipped — recovery falls back
//! to the next-older valid snapshot, or the empty state plus a full
//! replay. Validation is strict: bad magic, short body, or a CRC
//! mismatch all disqualify the file.

use crate::crc::crc32;
use crate::disk::Disk;
use crate::record::{self, Cursor, TableImage};
use crate::StorageError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Snapshot file magic.
pub const MAGIC: &[u8; 8] = b"DBXSNAP1";

/// Snapshot file name for an LSN.
pub fn snapshot_name(lsn: u64) -> String {
    format!("snap-{lsn:016}.img")
}

/// Parses an LSN out of a snapshot file name.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".img")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A decoded, validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Every record with `lsn <= this` is reflected in `tables`.
    pub lsn: u64,
    /// The full catalog at `lsn`.
    pub tables: BTreeMap<String, Arc<TableImage>>,
}

impl Snapshot {
    /// Serializes to the on-disk file image.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.lsn.to_le_bytes());
        record::put_tables(&mut body, &self.tables);
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes and validates a file image. Any damage — bad magic,
    /// short header, truncated body, CRC mismatch, undecodable body —
    /// is an error; the caller treats the file as if it did not exist.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, StorageError> {
        if bytes.len() < 16 {
            return Err(StorageError::corrupt(format!(
                "snapshot header needs 16 bytes, file has {}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(StorageError::corrupt("snapshot magic mismatch".to_string()));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if bytes.len() - 16 < body_len {
            return Err(StorageError::corrupt(format!(
                "snapshot body truncated: claims {body_len} bytes, {} present",
                bytes.len() - 16
            )));
        }
        let body = &bytes[16..16 + body_len];
        if crc32(body) != want_crc {
            return Err(StorageError::corrupt(
                "snapshot body crc mismatch".to_string(),
            ));
        }
        let mut cur = Cursor::new(body);
        let lsn = cur.u64()?;
        let tables = cur.tables()?;
        cur.finish()?;
        Ok(Snapshot { lsn, tables })
    }

    /// Writes the snapshot to `disk` and makes it durable.
    pub fn write<D: Disk>(&self, disk: &mut D) -> Result<String, StorageError> {
        let name = snapshot_name(self.lsn);
        if disk.exists(&name) {
            disk.remove(&name)?;
        }
        disk.create(&name, dbx_faults::StorageFileClass::Snapshot)?;
        disk.append(&name, &self.encode())?;
        disk.fsync(&name)?;
        Ok(name)
    }

    /// Loads the newest valid snapshot from `disk`, skipping damaged
    /// files (newest-first). Returns the snapshot plus the names of
    /// files it had to skip.
    pub fn load_latest<D: Disk>(disk: &D) -> (Option<Snapshot>, Vec<String>) {
        let mut names: Vec<(u64, String)> = disk
            .list()
            .into_iter()
            .filter_map(|n| parse_snapshot_name(&n).map(|l| (l, n)))
            .collect();
        names.sort();
        let mut skipped = Vec::new();
        for (_, name) in names.into_iter().rev() {
            match disk.read(&name).and_then(|b| Snapshot::decode(&b)) {
                Ok(snap) => return (Some(snap), skipped),
                Err(e) => skipped.push(format!("{name}: {e}")),
            }
        }
        (None, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample(lsn: u64) -> Snapshot {
        let mut tables = BTreeMap::new();
        tables.insert(
            "items".to_string(),
            Arc::new(TableImage {
                name: "items".into(),
                columns: vec![("color".into(), vec![1, 2, 3])],
            }),
        );
        Snapshot { lsn, tables }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(snapshot_name(7), "snap-0000000000000007.img");
        assert_eq!(parse_snapshot_name("snap-0000000000000007.img"), Some(7));
        assert_eq!(parse_snapshot_name("wal-00000001.seg"), None);
        assert_eq!(parse_snapshot_name("snap-7.img"), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample(12);
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample(3).encode();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "accepted a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let clean = sample(3).encode();
        for byte in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[byte] ^= 0x01;
            assert!(
                Snapshot::decode(&damaged).is_err(),
                "accepted a flip at byte {byte}"
            );
        }
    }

    #[test]
    fn load_latest_skips_damaged_files() {
        let mut disk = MemDisk::new();
        sample(5).write(&mut disk).unwrap();
        sample(9).write(&mut disk).unwrap();
        // Damage the newest one: load must fall back to lsn 5.
        let mut bytes = disk.read(&snapshot_name(9)).unwrap();
        let cut = bytes.len() / 2;
        bytes.truncate(cut);
        disk.set_file(
            &snapshot_name(9),
            dbx_faults::StorageFileClass::Snapshot,
            bytes,
        );
        let (snap, skipped) = Snapshot::load_latest(&disk);
        assert_eq!(snap.unwrap().lsn, 5);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].starts_with(&snapshot_name(9)));
    }

    #[test]
    fn load_latest_empty_disk() {
        let (snap, skipped) = Snapshot::load_latest(&MemDisk::new());
        assert!(snap.is_none());
        assert!(skipped.is_empty());
    }
}
