//! The storage backends: a deterministic in-memory disk with an explicit
//! durability model (what the chaos campaigns run on) and a plain
//! filesystem backend.
//!
//! The core idea of [`MemDisk`] is that every file has **two** byte
//! images: `data`, the page-cache view that reads and writes touch, and
//! `durable`, the image that survives [`MemDisk::crash`]. Only
//! [`Disk::fsync`] moves bytes from the first to the second — exactly
//! the contract a real OS gives a write-ahead log. Storage faults from
//! [`dbx_faults::storage`] are applied at the I/O boundary: a torn write
//! clips the buffer, a bit flip corrupts it in transit, a dropped fsync
//! reports success without durabilizing, a truncation cuts the durable
//! image. Because faults are consumed by (file class, I/O index), the
//! same plan against the same operation sequence always corrupts the
//! same bytes on every host.

use crate::StorageError;
use dbx_faults::{StorageFaultKind, StorageFaultPlan, StorageFileClass};
use std::collections::BTreeMap;

/// A minimal append-oriented file store, sufficient for WAL segments and
/// snapshot images.
pub trait Disk {
    /// Creates an empty file of the given class (truncates an existing
    /// one). Metadata is durable immediately (journaled directory).
    fn create(&mut self, name: &str, class: StorageFileClass) -> Result<(), StorageError>;
    /// Appends bytes to a file.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Cuts a file to `len` bytes (used by recovery to drop a corrupt
    /// WAL tail). Durable immediately.
    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StorageError>;
    /// Makes a file's current contents durable.
    fn fsync(&mut self, name: &str) -> Result<(), StorageError>;
    /// Removes a file. Durable immediately.
    fn remove(&mut self, name: &str) -> Result<(), StorageError>;
    /// Reads a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError>;
    /// All file names, sorted (so directory iteration is deterministic).
    fn list(&self) -> Vec<String>;
    /// Whether the file exists.
    fn exists(&self, name: &str) -> bool {
        self.list().iter().any(|n| n == name)
    }
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    class: Option<StorageFileClass>,
    /// The page-cache view: what reads see.
    data: Vec<u8>,
    /// The image that survives a crash: advanced only by fsync.
    durable: Vec<u8>,
}

/// The deterministic in-memory disk.
///
/// Beyond the [`Disk`] trait it exposes the chaos-testing surface:
/// [`MemDisk::set_fault_plan`], [`MemDisk::crash`], and raw access to
/// durable images so campaigns can re-create "the machine died k bytes
/// into the log" states byte-exactly.
#[derive(Debug, Clone, Default)]
pub struct MemDisk {
    files: BTreeMap<String, MemFile>,
    plan: StorageFaultPlan,
    /// One I/O counter per file class (writes and fsyncs both count).
    wal_ios: u64,
    snap_ios: u64,
    /// Human-readable descriptions of every fault actually applied.
    injected: Vec<String>,
}

impl MemDisk {
    /// A fresh, empty disk with no fault plan.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Installs a storage fault plan; events are consumed as the
    /// per-class I/O counters pass them. Counters are *not* reset — set
    /// the plan before the workload for reproducible indexing.
    pub fn set_fault_plan(&mut self, plan: StorageFaultPlan) {
        self.plan = plan;
    }

    /// Descriptions of the fault events applied so far, in order.
    pub fn injected(&self) -> &[String] {
        &self.injected
    }

    /// Simulates power loss: every file's cache view is reset to its
    /// durable image. Files never fsynced come back empty.
    pub fn crash(&mut self) {
        for f in self.files.values_mut() {
            f.data = f.durable.clone();
        }
    }

    /// The durable image of a file (what a crash would leave behind).
    pub fn durable_image(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|f| f.durable.as_slice())
    }

    /// Overwrites both images of a file — campaigns use this to build
    /// precise post-crash states (e.g. "WAL durable up to byte k").
    pub fn set_file(&mut self, name: &str, class: StorageFileClass, bytes: Vec<u8>) {
        self.files.insert(
            name.to_string(),
            MemFile {
                class: Some(class),
                data: bytes.clone(),
                durable: bytes,
            },
        );
    }

    fn class_counter(&mut self, class: StorageFileClass) -> u64 {
        let c = match class {
            StorageFileClass::Wal => &mut self.wal_ios,
            StorageFileClass::Snapshot => &mut self.snap_ios,
        };
        let idx = *c;
        *c += 1;
        idx
    }

    fn file_mut(&mut self, name: &str) -> Result<&mut MemFile, StorageError> {
        self.files.get_mut(name).ok_or_else(|| StorageError::Io {
            op: "open".into(),
            file: name.into(),
            detail: "no such file".into(),
        })
    }
}

impl Disk for MemDisk {
    fn create(&mut self, name: &str, class: StorageFileClass) -> Result<(), StorageError> {
        self.files.insert(
            name.to_string(),
            MemFile {
                class: Some(class),
                ..MemFile::default()
            },
        );
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let class = self.file_mut(name)?.class;
        let mut buf = data.to_vec();
        if let Some(class) = class {
            let idx = self.class_counter(class);
            if let Some(ev) = self.plan.take_due(class, idx) {
                self.injected.push(ev.describe());
                match ev.kind {
                    StorageFaultKind::TornWrite { keep_bytes } => {
                        buf.truncate(keep_bytes.min(buf.len()));
                    }
                    StorageFaultKind::BitFlip { byte, bit } => {
                        if !buf.is_empty() {
                            let at = byte % buf.len();
                            buf[at] ^= 1 << (bit % 8);
                        }
                    }
                    // Fsync-shaped events on a write index do nothing to
                    // the buffer; they were mis-aimed by a seeded plan.
                    StorageFaultKind::DroppedFsync | StorageFaultKind::Truncate { .. } => {}
                }
            }
        }
        self.file_mut(name)?.data.extend_from_slice(&buf);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StorageError> {
        let f = self.file_mut(name)?;
        f.data.truncate(len);
        f.durable.truncate(len);
        Ok(())
    }

    fn fsync(&mut self, name: &str) -> Result<(), StorageError> {
        let class = self.file_mut(name)?.class;
        if let Some(class) = class {
            let idx = self.class_counter(class);
            if let Some(ev) = self.plan.take_due(class, idx) {
                self.injected.push(ev.describe());
                match ev.kind {
                    StorageFaultKind::DroppedFsync => return Ok(()), // lies
                    StorageFaultKind::Truncate { keep_bytes } => {
                        let f = self.file_mut(name)?;
                        let keep = keep_bytes.min(f.data.len());
                        f.durable = f.data[..keep].to_vec();
                        return Ok(());
                    }
                    // Write-shaped events on an fsync index: no effect.
                    StorageFaultKind::TornWrite { .. } | StorageFaultKind::BitFlip { .. } => {}
                }
            }
        }
        let f = self.file_mut(name)?;
        f.durable = f.data.clone();
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.files.remove(name);
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| StorageError::Io {
                op: "read".into(),
                file: name.into(),
                detail: "no such file".into(),
            })
    }

    fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

/// A plain filesystem backend rooted at a directory. No fault injection
/// and no simulated crashes — this is the backend a long-lived service
/// actually persists with; the campaigns use [`MemDisk`].
#[derive(Debug)]
pub struct DirDisk {
    root: std::path::PathBuf,
}

impl DirDisk {
    /// Opens (creating if needed) a directory-backed disk.
    pub fn open(root: impl Into<std::path::PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StorageError::Io {
            op: "mkdir".into(),
            file: root.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(DirDisk { root })
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.root.join(name)
    }

    fn io_err(op: &str, name: &str, e: std::io::Error) -> StorageError {
        StorageError::Io {
            op: op.into(),
            file: name.into(),
            detail: e.to_string(),
        }
    }
}

impl Disk for DirDisk {
    fn create(&mut self, name: &str, _class: StorageFileClass) -> Result<(), StorageError> {
        std::fs::write(self.path(name), []).map_err(|e| Self::io_err("create", name, e))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))
            .map_err(|e| Self::io_err("open", name, e))?;
        f.write_all(data)
            .map_err(|e| Self::io_err("append", name, e))
    }

    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StorageError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| Self::io_err("open", name, e))?;
        f.set_len(len as u64)
            .map_err(|e| Self::io_err("truncate", name, e))?;
        f.sync_all().map_err(|e| Self::io_err("fsync", name, e))
    }

    fn fsync(&mut self, name: &str) -> Result<(), StorageError> {
        let f = std::fs::File::open(self.path(name)).map_err(|e| Self::io_err("open", name, e))?;
        f.sync_all().map_err(|e| Self::io_err("fsync", name, e))
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        std::fs::remove_file(self.path(name)).map_err(|e| Self::io_err("remove", name, e))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        std::fs::read(self.path(name)).map_err(|e| Self::io_err("read", name, e))
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_die_in_a_crash() {
        let mut d = MemDisk::new();
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.append("wal-1", b"durable").unwrap();
        d.fsync("wal-1").unwrap();
        d.append("wal-1", b" volatile").unwrap();
        assert_eq!(d.read("wal-1").unwrap(), b"durable volatile");
        d.crash();
        assert_eq!(d.read("wal-1").unwrap(), b"durable");
    }

    #[test]
    fn torn_write_clips_the_buffer() {
        let mut d = MemDisk::new();
        d.set_fault_plan(StorageFaultPlan::new().with_torn_wal_write(0, 3));
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.append("wal-1", b"0123456789").unwrap();
        assert_eq!(d.read("wal-1").unwrap(), b"012");
        assert_eq!(d.injected().len(), 1);
    }

    #[test]
    fn bit_flip_corrupts_in_transit() {
        let mut d = MemDisk::new();
        d.set_fault_plan(StorageFaultPlan::new().with_wal_bit_flip(0, 1, 0));
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.append("wal-1", &[0x00, 0x00, 0x00]).unwrap();
        assert_eq!(d.read("wal-1").unwrap(), vec![0x00, 0x01, 0x00]);
    }

    #[test]
    fn dropped_fsync_lies_about_durability() {
        let mut d = MemDisk::new();
        // I/O index 1 is the fsync (index 0 is the append).
        d.set_fault_plan(StorageFaultPlan::new().with_dropped_wal_fsync(1));
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.append("wal-1", b"lost").unwrap();
        d.fsync("wal-1").unwrap(); // reports success…
        d.crash();
        assert_eq!(d.read("wal-1").unwrap(), b""); // …but durabilized nothing
    }

    #[test]
    fn snapshot_truncation_cuts_the_durable_image() {
        let mut d = MemDisk::new();
        d.set_fault_plan(StorageFaultPlan::new().with_truncated_snapshot(1, 4));
        d.create("snap-1", StorageFileClass::Snapshot).unwrap();
        d.append("snap-1", b"snapshot-bytes").unwrap();
        d.fsync("snap-1").unwrap();
        d.crash();
        assert_eq!(d.read("snap-1").unwrap(), b"snap");
    }

    #[test]
    fn class_counters_are_independent() {
        let mut d = MemDisk::new();
        d.set_fault_plan(StorageFaultPlan::new().with_torn_wal_write(1, 0));
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.create("snap-1", StorageFileClass::Snapshot).unwrap();
        d.append("snap-1", b"unharmed").unwrap(); // snapshot io 0
        d.append("wal-1", b"first").unwrap(); // wal io 0
        d.append("wal-1", b"second").unwrap(); // wal io 1 → torn to 0 bytes
        assert_eq!(d.read("wal-1").unwrap(), b"first");
        assert_eq!(d.read("snap-1").unwrap(), b"unharmed");
    }

    #[test]
    fn dirdisk_round_trips_through_the_filesystem() {
        let root = std::env::temp_dir().join(format!("dbx-storage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut d = DirDisk::open(&root).unwrap();
        d.create("wal-1", StorageFileClass::Wal).unwrap();
        d.append("wal-1", b"hello ").unwrap();
        d.append("wal-1", b"disk").unwrap();
        d.fsync("wal-1").unwrap();
        assert_eq!(d.read("wal-1").unwrap(), b"hello disk");
        assert_eq!(d.list(), vec!["wal-1".to_string()]);
        d.truncate("wal-1", 5).unwrap();
        assert_eq!(d.read("wal-1").unwrap(), b"hello");
        d.remove("wal-1").unwrap();
        assert!(!d.exists("wal-1"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
