//! `dbx-storage` — durable table storage for the query service.
//!
//! The serving story of the workspace needs tables that survive process
//! death: this crate provides an append-only, checksummed, segment-based
//! write-ahead log ([`wal`]), periodic full-catalog snapshots
//! ([`snapshot`]), and a [`Store`] that ties them together with
//! deterministic recovery, snapshot-isolated reads over immutable
//! [`TableImage`] generations, and first-committer-wins optimistic
//! writes.
//!
//! Durability is *modeled*, not assumed: the [`disk::MemDisk`] backend
//! keeps a page-cache image and a durable image per file, moves bytes
//! between them only on fsync, and injects storage faults from
//! [`dbx_faults::storage`] at exact (file class, I/O index) points. The
//! [`campaign`] module uses that to kill the log at every byte offset
//! and under torn writes, bit flips, dropped fsyncs, and truncated
//! snapshots, asserting that recovery always lands on exactly the
//! longest fully durable committed prefix — bit-identically on every
//! host.
//!
//! Layering: this crate sits *below* `dbx-query` (which wraps
//! [`TableImage`]s into indexed tables and serves them) and depends only
//! on `dbx-faults` (fault vocabulary) and `dbx-observe` (spans and
//! counters for `wal.*` / `snapshot.*` activity).

pub mod campaign;
pub mod crc;
pub mod disk;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use disk::{DirDisk, Disk, MemDisk};
pub use record::{Columns, TableImage, TableOp, WalRecord};
pub use snapshot::Snapshot;
pub use store::{digest_tables, RecoveryReport, Store, StoreOptions, StoreView, Txn};
pub use wal::Wal;

/// Everything that can go wrong in the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Optimistic concurrency conflict: another transaction committed
    /// after this one began. Retryable — begin again from the current
    /// generation.
    Conflict {
        /// Generation the losing transaction was begun at.
        base_gen: u64,
        /// Generation the store had advanced to.
        current_gen: u64,
    },
    /// The operation names a table that does not exist.
    UnknownTable {
        /// The missing table.
        name: String,
    },
    /// A create names a table that already exists.
    DuplicateTable {
        /// The already-present table.
        name: String,
    },
    /// An append's column set does not match the table's schema.
    ColumnMismatch {
        /// The table appended to.
        table: String,
        /// The table's column names.
        expected: Vec<String>,
        /// The column names the append supplied.
        got: Vec<String>,
    },
    /// Columns in one batch have unequal lengths.
    ColumnLengthMismatch {
        /// The table involved.
        table: String,
        /// The offending column.
        column: String,
        /// Length of the batch's first column.
        expected: usize,
        /// Length of the offending column.
        got: usize,
    },
    /// An I/O operation failed (filesystem backends).
    Io {
        /// The operation (`read`, `append`, `fsync`, …).
        op: String,
        /// The file involved.
        file: String,
        /// Backend detail.
        detail: String,
    },
    /// On-disk bytes failed validation (CRC mismatch, short read,
    /// undecodable record). Recovery handles WAL corruption itself;
    /// this surfaces where damage is not self-healing.
    Corrupt {
        /// What failed to validate.
        what: String,
    },
}

impl StorageError {
    pub(crate) fn corrupt(what: String) -> Self {
        StorageError::Corrupt { what }
    }

    /// True for errors a client should retry (today: OCC conflicts).
    /// Validation, I/O, and corruption errors are not retryable — the
    /// same request would fail the same way.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StorageError::Conflict { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Conflict {
                base_gen,
                current_gen,
            } => write!(
                f,
                "write conflict: transaction began at generation {base_gen}, store is at {current_gen}"
            ),
            StorageError::UnknownTable { name } => write!(f, "no such table {name:?}"),
            StorageError::DuplicateTable { name } => write!(f, "table {name:?} already exists"),
            StorageError::ColumnMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "append to {table:?} supplies columns {got:?}, table has {expected:?}"
            ),
            StorageError::ColumnLengthMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "ragged batch for {table:?}: column {column:?} has {got} values, expected {expected}"
            ),
            StorageError::Io { op, file, detail } => {
                write!(f, "{op} on {file:?} failed: {detail}")
            }
            StorageError::Corrupt { what } => write!(f, "corrupt storage: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_conflicts_are_retryable() {
        assert!(StorageError::Conflict {
            base_gen: 1,
            current_gen: 2
        }
        .is_retryable());
        for err in [
            StorageError::UnknownTable { name: "t".into() },
            StorageError::DuplicateTable { name: "t".into() },
            StorageError::ColumnMismatch {
                table: "t".into(),
                expected: vec!["a".into()],
                got: vec!["b".into()],
            },
            StorageError::ColumnLengthMismatch {
                table: "t".into(),
                column: "a".into(),
                expected: 2,
                got: 3,
            },
            StorageError::Io {
                op: "read".into(),
                file: "wal-00000001.seg".into(),
                detail: "gone".into(),
            },
            StorageError::Corrupt {
                what: "frame".into(),
            },
        ] {
            assert!(!err.is_retryable(), "{err} must not be retryable");
        }
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = StorageError::Conflict {
            base_gen: 3,
            current_gen: 5,
        };
        assert!(e.to_string().contains("generation 3"));
        assert!(StorageError::Corrupt { what: "x".into() }
            .to_string()
            .contains("corrupt"));
    }
}
