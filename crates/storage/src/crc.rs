//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the frame
//! and snapshot checksum.
//!
//! Hand-rolled table-driven implementation: the workspace builds offline
//! and the checksum must be bit-identical on every host, so we depend on
//! nothing. The same routine doubles as the deterministic *state digest*
//! used by the crash-recovery campaigns to compare recovered stores
//! across hosts.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

static TABLE: [u32; 256] = table();

/// CRC-32 of `data` (init `!0`, final xor `!0` — the zlib convention).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(!0u32, data) ^ !0u32
}

/// Streams more data into a raw (pre-final-xor) CRC state. Start from
/// `!0u32`, feed chunks, finish with `^ !0u32`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut s = !0u32;
        for chunk in data.chunks(7) {
            s = crc32_update(s, chunk);
        }
        assert_eq!(s ^ !0u32, crc32(data));
    }

    #[test]
    fn single_bit_damage_changes_the_sum() {
        let mut data = b"frame payload bytes".to_vec();
        let clean = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
