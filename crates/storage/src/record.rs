//! The logical log: table operations, LSN-stamped records, and their
//! byte-exact little-endian serialization.
//!
//! Encoding is hand-rolled (the workspace builds offline) and fully
//! deterministic: the same record always serializes to the same bytes on
//! every host, which is what lets the crash campaigns compare WAL images
//! and recovered-state digests across machines. Decoding is defensive —
//! every length is checked against the remaining buffer — because a
//! frame that passed its CRC can still be hostile after a targeted bit
//! flip that happens to collide (or a version-skewed writer).

use crate::StorageError;
use std::sync::Arc;

/// Column-major table payload: `(column name, values)`, in creation
/// order. Used both for full table definitions and row-batch appends.
pub type Columns = Vec<(String, Vec<u32>)>;

/// An immutable table image — the unit the store versions and the
/// snapshot serializes. Query layers wrap it into their own indexed
/// representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// Columns, all of equal length.
    pub columns: Columns,
}

impl TableImage {
    /// Row count (0 for a table with no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(|(_, v)| v.len()).unwrap_or(0)
    }
}

/// One logical operation against the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOp {
    /// Creates a table with the given columns (may carry initial rows).
    Create {
        /// Table name (must not exist).
        name: String,
        /// Column definitions with initial data, all of equal length.
        columns: Columns,
    },
    /// Appends a batch of rows: one value vector per column, covering
    /// *exactly* the table's columns, all of equal length.
    Append {
        /// Table name (must exist).
        name: String,
        /// Per-column values of the new rows.
        rows: Columns,
    },
    /// Drops a table.
    Drop {
        /// Table name (must exist).
        name: String,
    },
}

impl TableOp {
    /// The table the operation touches.
    pub fn table(&self) -> &str {
        match self {
            TableOp::Create { name, .. }
            | TableOp::Append { name, .. }
            | TableOp::Drop { name } => name,
        }
    }
}

/// One WAL record = one committed transaction: a log sequence number
/// plus the full batch of operations. The whole batch shares one frame
/// (and hence one CRC), so a torn write can never surface a partially
/// applied transaction — either the frame is fully durable and the
/// commit replays, or the frame is damaged and the commit vanishes
/// atomically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic log sequence number, one per commit (1-based; 0 means
    /// "before any record" in snapshot headers).
    pub lsn: u64,
    /// The transaction's operations, applied in order.
    pub ops: Vec<TableOp>,
}

// ---- encoding --------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a column list (shared by ops and snapshots).
pub(crate) fn put_columns(out: &mut Vec<u8>, cols: &Columns) {
    put_u32(out, cols.len() as u32);
    for (name, vals) in cols {
        put_str(out, name);
        put_u32(out, vals.len() as u32);
        for v in vals {
            put_u32(out, *v);
        }
    }
}

fn put_op(out: &mut Vec<u8>, op: &TableOp) {
    match op {
        TableOp::Create { name, columns } => {
            out.push(0);
            put_str(out, name);
            put_columns(out, columns);
        }
        TableOp::Append { name, rows } => {
            out.push(1);
            put_str(out, name);
            put_columns(out, rows);
        }
        TableOp::Drop { name } => {
            out.push(2);
            put_str(out, name);
        }
    }
}

fn take_op(cur: &mut Cursor<'_>) -> Result<TableOp, StorageError> {
    let tag = cur.u8()?;
    Ok(match tag {
        0 => TableOp::Create {
            name: cur.string()?,
            columns: cur.columns()?,
        },
        1 => TableOp::Append {
            name: cur.string()?,
            rows: cur.columns()?,
        },
        2 => TableOp::Drop {
            name: cur.string()?,
        },
        t => return Err(StorageError::corrupt(format!("unknown op tag {t}"))),
    })
}

impl WalRecord {
    /// Serializes the record to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.lsn);
        put_u32(&mut out, self.ops.len() as u32);
        for op in &self.ops {
            put_op(&mut out, op);
        }
        out
    }

    /// Decodes a record, rejecting trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, StorageError> {
        let mut cur = Cursor::new(bytes);
        let lsn = cur.u64()?;
        let n = cur.u32()? as usize;
        if n > bytes.len() {
            return Err(StorageError::corrupt(format!("implausible op count {n}")));
        }
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(take_op(&mut cur)?);
        }
        cur.finish()?;
        Ok(WalRecord { lsn, ops })
    }
}

/// Serializes a catalog (sorted table images) — the snapshot body shares
/// this with nothing else, but the digest uses it too, so it lives here.
pub(crate) fn put_tables(
    out: &mut Vec<u8>,
    tables: &std::collections::BTreeMap<String, Arc<TableImage>>,
) {
    put_u32(out, tables.len() as u32);
    for (name, img) in tables {
        put_str(out, name);
        put_columns(out, &img.columns);
    }
}

// ---- decoding --------------------------------------------------------

/// A checked little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.bytes.len() - self.at < n {
            return Err(StorageError::corrupt(format!(
                "record needs {n} more bytes, {} remain",
                self.bytes.len() - self.at
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::corrupt("string is not UTF-8".to_string()))
    }

    pub(crate) fn columns(&mut self) -> Result<Columns, StorageError> {
        let n = self.u32()? as usize;
        // Sanity: each column needs at least 8 header bytes.
        if n > self.bytes.len() / 8 + 1 {
            return Err(StorageError::corrupt(format!(
                "implausible column count {n}"
            )));
        }
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.string()?;
            let len = self.u32()? as usize;
            if len > (self.bytes.len() - self.at) / 4 {
                return Err(StorageError::corrupt(format!(
                    "column {name:?} claims {len} values beyond the buffer"
                )));
            }
            let mut vals = Vec::with_capacity(len);
            for _ in 0..len {
                vals.push(self.u32()?);
            }
            cols.push((name, vals));
        }
        Ok(cols)
    }

    pub(crate) fn tables(
        &mut self,
    ) -> Result<std::collections::BTreeMap<String, Arc<TableImage>>, StorageError> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() / 8 + 1 {
            return Err(StorageError::corrupt(format!(
                "implausible table count {n}"
            )));
        }
        let mut tables = std::collections::BTreeMap::new();
        for _ in 0..n {
            let name = self.string()?;
            let columns = self.columns()?;
            tables.insert(name.clone(), Arc::new(TableImage { name, columns }));
        }
        Ok(tables)
    }

    pub(crate) fn finish(self) -> Result<(), StorageError> {
        if self.at != self.bytes.len() {
            return Err(StorageError::corrupt(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<TableOp> {
        vec![
            TableOp::Create {
                name: "items".into(),
                columns: vec![
                    ("color".into(), vec![1, 2, 3]),
                    ("size".into(), vec![9, 8, 7]),
                ],
            },
            TableOp::Append {
                name: "items".into(),
                rows: vec![("color".into(), vec![4]), ("size".into(), vec![6])],
            },
            TableOp::Drop {
                name: "items".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        // Single-op and whole-batch records both survive the trip.
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rec = WalRecord {
                lsn: i as u64 + 1,
                ops: vec![op],
            };
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
        let batch = WalRecord {
            lsn: 4,
            ops: sample_ops(),
        };
        assert_eq!(WalRecord::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn decode_rejects_truncation_anywhere() {
        let rec = WalRecord {
            lsn: 42,
            ops: sample_ops(),
        };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(
                WalRecord::decode(&bytes[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let rec = WalRecord {
            lsn: 1,
            ops: vec![TableOp::Drop { name: "t".into() }],
        };
        let mut bytes = rec.encode();
        bytes.push(0xFF);
        assert!(WalRecord::decode(&bytes).is_err());
        let mut bad = rec.encode();
        bad[12] = 9; // first op's tag (after lsn + op count)
        assert!(WalRecord::decode(&bad).is_err());
    }

    #[test]
    fn implausible_lengths_do_not_allocate() {
        // A claimed 4-billion-value column must fail fast, not OOM.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1);
        put_u32(&mut bytes, 1); // one op
        bytes.push(0); // Create
        put_str(&mut bytes, "t");
        put_u32(&mut bytes, 1); // one column
        put_str(&mut bytes, "c");
        put_u32(&mut bytes, u32::MAX); // value count
        assert!(WalRecord::decode(&bytes).is_err());
    }

    #[test]
    fn table_image_rows() {
        let img = TableImage {
            name: "t".into(),
            columns: vec![("a".into(), vec![1, 2])],
        };
        assert_eq!(img.n_rows(), 2);
        assert_eq!(
            TableImage {
                name: "e".into(),
                columns: vec![]
            }
            .n_rows(),
            0
        );
    }
}
