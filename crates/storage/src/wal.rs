//! The append-only, checksummed, segment-based write-ahead log.
//!
//! Frame format (all little-endian):
//!
//! ```text
//! | len: u32 | crc32(payload): u32 | payload: len bytes |
//! ```
//!
//! The log is a chain of segments named `wal-NNNNNNNN.seg` (8-digit
//! zero-padded sequence number). A new segment is started whenever a
//! snapshot is taken, so a recovery that starts from snapshot LSN `s`
//! only replays segments that can contain records after `s`. Segments
//! are **never pruned**: snapshots are a recovery-speed optimization,
//! not the source of truth, so a corrupt or torn snapshot can always
//! fall back to an older snapshot (or the empty state) and replay the
//! full chain.
//!
//! Replay is torn-write and short-read tolerant: it walks frames in
//! order, stops at the first frame whose header is short, whose payload
//! is short, or whose CRC does not match, and reports the byte length of
//! the valid prefix so the store can truncate the tail. Everything
//! before the damage is preserved; everything after is — by the WAL
//! invariant — an uncommitted suffix.

use crate::crc::crc32;
use crate::disk::Disk;
use crate::record::WalRecord;
use crate::StorageError;

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER: usize = 8;

/// Builds the on-disk frame for a payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Segment file name for a sequence number.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

/// Parses a segment sequence number out of a file name.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The outcome of scanning one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Records recovered from the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (frames that fully check out).
    pub valid_len: usize,
    /// Total bytes present in the segment image.
    pub total_len: usize,
    /// Why the scan stopped early, if it did.
    pub damage: Option<String>,
}

impl SegmentScan {
    /// True when the segment had a torn/corrupt tail.
    pub fn truncated(&self) -> bool {
        self.valid_len < self.total_len
    }
}

/// Scans a raw segment image, decoding frames until the first sign of
/// damage. Never fails: damage terminates the scan, it does not error.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut damage = None;
    while at < bytes.len() {
        if bytes.len() - at < FRAME_HEADER {
            damage = Some(format!(
                "short frame header: {} bytes at offset {at}",
                bytes.len() - at
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if bytes.len() - at - FRAME_HEADER < len {
            damage = Some(format!(
                "short payload: frame at offset {at} claims {len} bytes, {} remain",
                bytes.len() - at - FRAME_HEADER
            ));
            break;
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(payload) != want_crc {
            damage = Some(format!("crc mismatch in frame at offset {at}"));
            break;
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                // A CRC-valid but undecodable payload: treat it like
                // corruption at this offset — the prefix is still good.
                damage = Some(format!("undecodable frame at offset {at}: {e}"));
                break;
            }
        }
        at += FRAME_HEADER + len;
    }
    SegmentScan {
        records,
        valid_len: at,
        total_len: bytes.len(),
        damage,
    }
}

/// The outcome of replaying the whole segment chain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalReplay {
    /// All valid records across segments, in log order.
    pub records: Vec<WalRecord>,
    /// Frames actually replayed (valid AND past `after_lsn` — frames in
    /// old segments already covered by a snapshot don't count).
    pub frames_replayed: u64,
    /// Frames discarded as torn/corrupt (at most 1 per damaged segment,
    /// counted as the whole invalid tail).
    pub frames_truncated: u64,
    /// Highest segment sequence number seen (0 when the chain is empty).
    pub last_segment: u64,
    /// Human-readable damage descriptions, if any.
    pub damage: Vec<String>,
}

/// The write side of the log: tracks the open segment.
#[derive(Debug, Clone)]
pub struct Wal {
    /// Sequence number of the segment new frames go to.
    open_segment: u64,
}

impl Wal {
    /// Starts (or resumes) a log whose newest segment is `open_segment`.
    pub fn new(open_segment: u64) -> Self {
        Wal {
            open_segment: open_segment.max(1),
        }
    }

    /// The segment currently receiving appends.
    pub fn open_segment(&self) -> u64 {
        self.open_segment
    }

    /// Name of the segment currently receiving appends.
    pub fn open_segment_name(&self) -> String {
        segment_name(self.open_segment)
    }

    /// Lists the chain's segment names on `disk`, in log order.
    pub fn segments<D: Disk>(disk: &D) -> Vec<(u64, String)> {
        let mut segs: Vec<(u64, String)> = disk
            .list()
            .into_iter()
            .filter_map(|n| parse_segment_name(&n).map(|s| (s, n)))
            .collect();
        segs.sort();
        segs
    }

    /// Appends one record frame to the open segment (no fsync — the
    /// caller groups frames per commit and syncs once).
    pub fn append<D: Disk>(
        &mut self,
        disk: &mut D,
        rec: &WalRecord,
    ) -> Result<usize, StorageError> {
        let frame = encode_frame(&rec.encode());
        let name = self.open_segment_name();
        if !disk.exists(&name) {
            disk.create(&name, dbx_faults::StorageFileClass::Wal)?;
        }
        disk.append(&name, &frame)?;
        Ok(frame.len())
    }

    /// Makes the open segment durable.
    pub fn sync<D: Disk>(&mut self, disk: &mut D) -> Result<(), StorageError> {
        let name = self.open_segment_name();
        if disk.exists(&name) {
            disk.fsync(&name)?;
        }
        Ok(())
    }

    /// Seals the open segment and starts the next one (called when a
    /// snapshot is taken so recovery can skip old segments).
    pub fn rotate<D: Disk>(&mut self, disk: &mut D) -> Result<(), StorageError> {
        self.sync(disk)?;
        self.open_segment += 1;
        Ok(())
    }

    /// Replays the whole chain from `disk`, keeping only records with
    /// `lsn > after_lsn`, truncating each damaged segment to its valid
    /// prefix and deleting any segments after the damage (they are an
    /// unreachable suffix of the log).
    ///
    /// Replay also enforces LSN contiguity among retained records: if a
    /// record is missing from the middle of the chain (a dropped
    /// rotation fsync combined with a damaged snapshot can durabilize a
    /// later segment while a tail of an earlier one is lost), replay
    /// stops at the gap rather than splicing a hole into history.
    pub fn replay<D: Disk>(disk: &mut D, after_lsn: u64) -> Result<WalReplay, StorageError> {
        let segs = Self::segments(disk);
        let mut out = WalReplay::default();
        let mut stop = false;
        let mut expected = after_lsn + 1;
        for (seq, name) in segs {
            if stop {
                // Everything after a damaged segment is past the end of
                // the valid log — drop it.
                out.damage
                    .push(format!("dropping segment {name} after damage"));
                disk.remove(&name)?;
                continue;
            }
            let bytes = disk.read(&name)?;
            let mut scan = scan_segment(&bytes);
            out.last_segment = seq;
            for rec in std::mem::take(&mut scan.records) {
                if rec.lsn <= after_lsn {
                    continue;
                }
                if rec.lsn != expected {
                    out.damage.push(format!(
                        "{name}: lsn gap: expected {expected}, found {}",
                        rec.lsn
                    ));
                    out.frames_truncated += 1;
                    stop = true;
                    break;
                }
                expected += 1;
                out.frames_replayed += 1;
                out.records.push(rec);
            }
            if stop {
                continue;
            }
            if scan.truncated() {
                out.frames_truncated += 1;
                if let Some(d) = scan.damage {
                    out.damage.push(format!("{name}: {d}"));
                }
                disk.truncate(&name, scan.valid_len)?;
                disk.fsync(&name)?;
                stop = true;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::record::TableOp;

    fn rec(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            ops: vec![TableOp::Append {
                name: "t".into(),
                rows: vec![("c".into(), vec![lsn as u32])],
            }],
        }
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_name(1), "wal-00000001.seg");
        assert_eq!(parse_segment_name("wal-00000017.seg"), Some(17));
        assert_eq!(parse_segment_name("wal-1.seg"), None);
        assert_eq!(parse_segment_name("snap-00000001.img"), None);
        assert_eq!(parse_segment_name("wal-0000000x.seg"), None);
    }

    #[test]
    fn append_replay_round_trip() {
        let mut disk = MemDisk::new();
        let mut wal = Wal::new(1);
        for lsn in 1..=5 {
            wal.append(&mut disk, &rec(lsn)).unwrap();
        }
        wal.sync(&mut disk).unwrap();
        disk.crash();
        let replay = Wal::replay(&mut disk, 0).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.frames_replayed, 5);
        assert_eq!(replay.frames_truncated, 0);
        assert_eq!(replay.records.last().unwrap().lsn, 5);
    }

    #[test]
    fn replay_filters_by_lsn() {
        let mut disk = MemDisk::new();
        let mut wal = Wal::new(1);
        for lsn in 1..=4 {
            wal.append(&mut disk, &rec(lsn)).unwrap();
        }
        wal.sync(&mut disk).unwrap();
        let replay = Wal::replay(&mut disk, 2).unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Filtered frames don't count as replayed.
        assert_eq!(replay.frames_replayed, 2);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        // Build a clean 3-frame segment, then cut it at every byte
        // offset: replay must always recover exactly the frames whose
        // bytes fully survive.
        let mut disk = MemDisk::new();
        let mut wal = Wal::new(1);
        let mut ends = Vec::new();
        let mut total = 0usize;
        for lsn in 1..=3 {
            total += wal.append(&mut disk, &rec(lsn)).unwrap();
            ends.push(total);
        }
        wal.sync(&mut disk).unwrap();
        let image = disk.read("wal-00000001.seg").unwrap();
        assert_eq!(image.len(), total);
        for cut in 0..=image.len() {
            let mut d = MemDisk::new();
            d.set_file(
                "wal-00000001.seg",
                dbx_faults::StorageFileClass::Wal,
                image[..cut].to_vec(),
            );
            let replay = Wal::replay(&mut d, 0).unwrap();
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(replay.records.len(), want, "cut at {cut}");
            // A cut exactly on a frame boundary (or the empty log) is
            // not damage; anywhere else it is.
            let on_boundary = cut == 0 || ends.contains(&cut);
            assert_eq!(replay.frames_truncated > 0, !on_boundary, "cut at {cut}");
            // After truncation the durable image must equal the valid prefix.
            let prefix_end = ends.iter().rev().find(|&&e| e <= cut).copied().unwrap_or(0);
            assert_eq!(d.read("wal-00000001.seg").unwrap().len(), prefix_end);
        }
    }

    #[test]
    fn bit_flip_truncates_and_later_segments_are_dropped() {
        let mut disk = MemDisk::new();
        let mut wal = Wal::new(1);
        wal.append(&mut disk, &rec(1)).unwrap();
        wal.append(&mut disk, &rec(2)).unwrap();
        wal.rotate(&mut disk).unwrap();
        wal.append(&mut disk, &rec(3)).unwrap();
        wal.sync(&mut disk).unwrap();
        // Flip a payload bit in frame 2 of segment 1.
        let mut image = disk.read("wal-00000001.seg").unwrap();
        let frame1_len = {
            let l = u32::from_le_bytes(image[0..4].try_into().unwrap()) as usize;
            FRAME_HEADER + l
        };
        image[frame1_len + FRAME_HEADER + 3] ^= 0x40;
        disk.set_file("wal-00000001.seg", dbx_faults::StorageFileClass::Wal, image);
        let replay = Wal::replay(&mut disk, 0).unwrap();
        // Only record 1 survives; segment 2 is dropped entirely because
        // it sits beyond the damage.
        assert_eq!(
            replay.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![1]
        );
        assert!(replay.frames_truncated >= 1);
        assert!(!disk.exists("wal-00000002.seg"));
        assert!(replay.damage.iter().any(|d| d.contains("crc mismatch")));
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let mut disk = MemDisk::new();
        let mut wal = Wal::new(1);
        wal.append(&mut disk, &rec(1)).unwrap();
        wal.rotate(&mut disk).unwrap();
        wal.append(&mut disk, &rec(2)).unwrap();
        wal.sync(&mut disk).unwrap();
        assert_eq!(Wal::segments(&disk).len(), 2);
        let replay = Wal::replay(&mut disk, 0).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.last_segment, 2);
    }
}
