//! `dbx-lint` — static verifier front-end for EIS programs.
//!
//! Two modes:
//!
//! * `dbx-lint --kernels` lints every built-in kernel (set operations and
//!   merge sort, scalar and EIS variants) as instantiated for each
//!   processor model of the paper.
//! * `dbx-lint [--model NAME] file.s ...` assembles each file with the
//!   model's extension mnemonics available and lints the result.
//!
//! Exit status is non-zero when any error-severity diagnostic fires, or,
//! with `--strict`, when any diagnostic fires at all.
//!
//! `--format text|json|sarif` selects the report shape: the default
//! human-readable text, a compact per-unit JSON digest, or a SARIF 2.1.0
//! document for code-scanning consumers. JSON and SARIF go to stdout;
//! the summary line moves to stderr so the document stays parseable.

use std::process::ExitCode;

use dbasip::analysis::{analyze, sarif, Diagnostic, Severity};
use dbasip::asm::Assembler;
use dbasip::cpu::ext::Extension;
use dbasip::cpu::{Program, DMEM0_BASE, DMEM1_BASE, SYSMEM_BASE};
use dbasip::dbisa::configs::ProcModel;
use dbasip::dbisa::datapath::SetOpKind;
use dbasip::dbisa::kernels::{hwset, hwsort, scalar, SetLayout, SortLayout};
use dbasip::dbisa::ops::DbExtension;
use dbasip::observe::json::Json;

/// Report shape selected with `--format`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    strict: bool,
    kernels: bool,
    model: ProcModel,
    format: Format,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dbx-lint [--strict] [--format FMT] --kernels\n       \
         dbx-lint [--strict] [--format FMT] [--model MODEL] FILE.s ...\n\n\
         MODEL: mini108 | dba1 | dba2 | dba1eis | dba2eis (default: dba2eis)\n\
         FMT:   text | json | sarif (default: text)"
    );
    std::process::exit(2);
}

fn parse_model(name: &str) -> Option<ProcModel> {
    match name {
        "mini108" => Some(ProcModel::Mini108),
        "dba1" => Some(ProcModel::Dba1Lsu),
        "dba2" => Some(ProcModel::Dba2Lsu),
        "dba1eis" => Some(ProcModel::Dba1LsuEis { partial: true }),
        "dba2eis" => Some(ProcModel::Dba2LsuEis { partial: true }),
        _ => None,
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        strict: false,
        kernels: false,
        model: ProcModel::Dba2LsuEis { partial: true },
        format: Format::Text,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--kernels" => opts.kernels = true,
            "--model" => match args.next().as_deref().and_then(parse_model) {
                Some(m) => opts.model = m,
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if opts.kernels != opts.files.is_empty() {
        usage();
    }
    opts
}

/// Per-unit findings: one entry per linted kernel or file.
type Units = Vec<(String, Vec<Diagnostic>)>;

/// Lints one program on one model into the unit list.
fn lint(label: &str, program: &Program, model: ProcModel, units: &mut Units) {
    let cfg = model.cpu_config();
    let ext = model.wiring().map(DbExtension::new);
    let ext_ref = ext.as_ref().map(|e| e as &dyn Extension);
    let diags = analyze(program, ext_ref, &cfg);
    units.push((label.to_string(), diags));
}

fn report(label: &str, diags: &[Diagnostic]) {
    if diags.is_empty() {
        println!("{label}: clean");
        return;
    }
    println!("{label}:");
    for d in diags {
        println!("  {d}");
    }
}

fn count(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    (errors, diags.len() - errors)
}

/// Compact machine-readable digest: per-unit diagnostic arrays plus
/// totals, in the same insertion-ordered writer SARIF export uses.
fn to_json(units: &Units) -> Json {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let rows: Vec<Json> = units
        .iter()
        .map(|(label, diags)| {
            let (e, w) = count(diags);
            errors += e;
            warnings += w;
            let ds: Vec<Json> = diags
                .iter()
                .map(|d| {
                    Json::obj([
                        (
                            "severity",
                            Json::Str(
                                match d.severity {
                                    Severity::Warning => "warning",
                                    Severity::Error => "error",
                                }
                                .to_string(),
                            ),
                        ),
                        ("rule", Json::Str(d.rule.code().to_string())),
                        ("pc", Json::Num(d.pc as f64)),
                        ("message", Json::Str(d.message.clone())),
                    ])
                })
                .collect();
            Json::obj([
                ("unit", Json::Str(label.clone())),
                ("diagnostics", Json::Arr(ds)),
            ])
        })
        .collect();
    Json::obj([
        ("tool", Json::Str("dbx-lint".to_string())),
        ("units", Json::Arr(rows)),
        ("errors", Json::Num(errors as f64)),
        ("warnings", Json::Num(warnings as f64)),
    ])
}

/// Mirrors the runner's per-model data placement for a representative
/// problem size, so kernels are linted exactly as they execute.
fn sample_set_layout(model: ProcModel) -> SetLayout {
    let n = 256u32;
    let (a, b) = match model {
        ProcModel::Mini108 => (SYSMEM_BASE, SYSMEM_BASE + 4 * n),
        ProcModel::Dba2LsuEis { .. } => (DMEM0_BASE, DMEM1_BASE),
        _ => (DMEM0_BASE, DMEM0_BASE + 4 * n),
    };
    SetLayout {
        a_base: a,
        a_len: n,
        b_base: b,
        b_len: n,
        c_base: b + 4 * n,
    }
}

fn lint_kernels(units: &mut Units) -> usize {
    let mut build_errors = 0;
    let kinds = [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ];
    for model in ProcModel::synthesis_models() {
        let layout = sample_set_layout(model);
        for kind in kinds {
            let program = match model.wiring() {
                Some(w) => hwset::set_op_program(kind, &w, &layout, hwset::DEFAULT_UNROLL),
                None => scalar::set_op_program(kind, &layout),
            };
            let label = format!("{} {:?} [{}]", model.name(), kind, model.partial_label());
            match program {
                Ok(p) => lint(&label, &p, model, units),
                Err(e) => {
                    eprintln!("{label}: failed to build: {e}");
                    build_errors += 1;
                }
            }
        }
        // Sort always runs on the 1-LSU arrangement (see runner::run_sort).
        let sort_model = match model {
            ProcModel::Dba2LsuEis { partial } => ProcModel::Dba1LsuEis { partial },
            ProcModel::Dba2Lsu => ProcModel::Dba1Lsu,
            m => m,
        };
        let src = match sort_model {
            ProcModel::Mini108 => SYSMEM_BASE,
            _ => DMEM0_BASE,
        };
        let n = 256u32;
        let sort_layout = SortLayout {
            src,
            dst: src + 4 * n,
            n,
        };
        let program = match sort_model.wiring() {
            Some(w) => hwsort::merge_sort_program(&w, &sort_layout).map(|(p, _)| p),
            None => scalar::merge_sort_program(src, src + 4 * n, n).map(|(p, _)| p),
        };
        let label = format!("{} sort [{}]", model.name(), model.partial_label());
        match program {
            Ok(p) => lint(&label, &p, sort_model, units),
            Err(e) => {
                eprintln!("{label}: failed to build: {e}");
                build_errors += 1;
            }
        }
    }
    build_errors
}

fn lint_files(opts: &Options, units: &mut Units) -> usize {
    let mut build_errors = 0;
    let ext = opts.model.wiring().map(DbExtension::new);
    let ext_ref = ext.as_ref().map(|e| e as &dyn Extension);
    for f in &opts.files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: cannot read: {e}");
                build_errors += 1;
                continue;
            }
        };
        let asm = match ext_ref {
            Some(x) => Assembler::with_extension(x),
            None => Assembler::new(),
        };
        match asm.assemble(&src) {
            Ok(p) => lint(f, &p, opts.model, units),
            Err(e) => {
                eprintln!("{f}: {e}");
                build_errors += 1;
            }
        }
    }
    build_errors
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut units = Units::new();
    let mut errors = if opts.kernels {
        lint_kernels(&mut units)
    } else {
        lint_files(&opts, &mut units)
    };
    let mut warnings = 0;
    for (_, diags) in &units {
        let (e, w) = count(diags);
        errors += e;
        warnings += w;
    }
    match opts.format {
        Format::Text => {
            for (label, diags) in &units {
                report(label, diags);
            }
            println!("{errors} error(s), {warnings} warning(s)");
        }
        Format::Json => {
            println!("{}", to_json(&units));
            eprintln!("{errors} error(s), {warnings} warning(s)");
        }
        Format::Sarif => {
            println!("{}", sarif::to_sarif(&units));
            eprintln!("{errors} error(s), {warnings} warning(s)");
        }
    }
    if errors > 0 || (opts.strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
