//! `dbx-trace` — trace exporter for the simulated kernel matrix.
//!
//! Runs every built-in kernel on every processor configuration with
//! recording enabled (the same matrix as `repro observe`) and exports
//! the cycle-domain timeline:
//!
//! ```text
//! dbx-trace --perfetto out.json   Chrome-trace/Perfetto timeline
//! dbx-trace --folded out.txt      folded stacks for flamegraph tools
//! dbx-trace --top 5               hotspot regions per kernel (stdout)
//! dbx-trace --quick               ~10x smaller workloads
//! ```
//!
//! With no export flags it prints the overview table and the hotspot
//! report. All timestamps are simulated cycles, never wall clock; load
//! a `--perfetto` file at <https://ui.perfetto.dev> with one lane per
//! processor configuration.

use std::process::ExitCode;

use dbasip::harness::observe;
use dbasip::observe::validate_chrome_trace;

fn usage() -> ! {
    eprintln!(
        "usage: dbx-trace [--quick] [--top N] [--perfetto FILE] [--folded FILE]\n\n\
         Runs the kernel x configuration matrix with recording enabled and\n\
         exports the simulated-cycle timeline."
    );
    std::process::exit(2);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        let value_of_prev =
            i > 0 && matches!(args[i - 1].as_str(), "--top" | "--perfetto" | "--folded");
        let known = matches!(a.as_str(), "--quick" | "--top" | "--perfetto" | "--folded");
        if !known && !value_of_prev {
            eprintln!("unknown argument '{a}'");
            usage();
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let top: usize = match flag_value(&args, "--top").map(str::parse) {
        Some(Ok(n)) => n,
        Some(Err(_)) => usage(),
        None => 3,
    };

    let o = observe::run(if quick { 0.1 } else { 1.0 });

    let mut exported = false;
    if let Some(path) = flag_value(&args, "--perfetto") {
        let text = o.perfetto();
        // Exports must load in the viewer; refuse to write garbage.
        if let Err(e) = validate_chrome_trace(&text) {
            eprintln!("internal error: generated trace is invalid: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote Perfetto trace to {path}");
        exported = true;
    }
    if let Some(path) = flag_value(&args, "--folded") {
        if let Err(e) = std::fs::write(path, o.folded().render()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote folded stacks to {path}");
        exported = true;
    }

    if !exported {
        println!("{}", o.render());
    }
    println!("{}", o.hotspot_report(top));
    ExitCode::SUCCESS
}
