//! dbasip — a reproduction of *"An Application-Specific Instruction Set for
//! Accelerating Set-Oriented Database Primitives"* (Arnold et al.,
//! SIGMOD 2014) as a pure-Rust cycle-accurate simulation stack.
//!
//! This facade crate re-exports the workspace members under stable names:
//!
//! * [`mem`] — local memories, caches, system memory, the data prefetcher.
//! * [`cpu`] — the customizable RISC processor simulator and its TIE-like
//!   extension framework.
//! * [`dbisa`] — the paper's contribution: the DB-specific instruction-set
//!   extension, kernels, and processor configurations.
//! * [`asm`] — assembler/disassembler for the base ISA and extension.
//! * [`synth`] — structural area/timing/power synthesis model.
//! * [`x86ref`] — optimized software baselines (SIMD-network merge-sort and
//!   set operations) for the paper's Tables 5 and 6.
//! * [`workloads`] — sorted-set generators with exact selectivity control.
//! * [`query`] — a miniature query executor offloading RID-set work to
//!   the simulated ASIP, plus the durable admission-controlled
//!   [`query::QueryService`] front-end.
//! * [`storage`] — crash-recoverable table storage: checksummed WAL,
//!   periodic snapshots, OCC commits, seeded crash campaigns.
//! * [`showcase`] — a second instruction-set extension (CRC32, bit ops,
//!   TIE-queue streaming) built on the same framework.
//! * [`harness`] — experiment drivers regenerating every table and figure.
//!
//! # Quick start
//!
//! ```
//! use dbasip::dbisa::{run_set_op, ProcModel, SetOpKind};
//! use dbasip::synth::{fmax_mhz, Tech};
//!
//! // Two sorted RID sets from secondary-index lookups.
//! let a: Vec<u32> = (0..1000).map(|i| 2 * i).collect();
//! let b: Vec<u32> = (0..1000).map(|i| 3 * i).collect();
//!
//! // The paper's full configuration: 2 LSUs + the DB instruction set.
//! let model = ProcModel::Dba2LsuEis { partial: true };
//! let run = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
//!
//! // Throughput at the frequency the synthesis timing model computes.
//! let f = fmax_mhz(model, &Tech::tsmc65lp());
//! let meps = run.throughput_meps((a.len() + b.len()) as u64, f);
//! assert!(run.result.iter().all(|x| x % 6 == 0));
//! assert!(meps > 500.0, "EIS-class throughput, got {meps:.0} M elements/s");
//! ```

pub use dbx_analysis as analysis;
pub use dbx_asm as asm;
pub use dbx_core as dbisa;
pub use dbx_cpu as cpu;
pub use dbx_faults as faults;
pub use dbx_harness as harness;
pub use dbx_mem as mem;
pub use dbx_observe as observe;
pub use dbx_query as query;
pub use dbx_showcase as showcase;
pub use dbx_storage as storage;
pub use dbx_synth as synth;
pub use dbx_workloads as workloads;
pub use dbx_x86ref as x86ref;
