//! Fixed-size array strategies (the `uniform4` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[T; 4]` with every element drawn from `element`.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4 { element }
}

/// See [`uniform4`].
#[derive(Clone)]
pub struct Uniform4<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
