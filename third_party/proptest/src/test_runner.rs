//! Test-runner types: configuration, failure reporting, and the
//! deterministic generator behind every strategy.

use std::fmt;

/// Per-`proptest!` block configuration (the `cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A plain failure with a message (what `prop_assert*!` produce).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 stream seeding every strategy.
///
/// Seeded from the test name so distinct properties explore distinct
/// streams but every run of the same binary reproduces the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
