//! The [`Strategy`] trait and its combinators: deterministic value
//! generation without shrinking.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized`-only combinators, so
/// heterogeneous strategies can be unified behind [`BoxedStrategy`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps the strategy so far, applied up to `depth` times.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = Union::new(vec![strat.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `A` (`any::<A>()`).
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy generating any value of `A`'s domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
