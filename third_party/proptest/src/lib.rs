//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the proptest API subset its tests use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive`, range and
//! tuple strategies, `any::<T>()`, [`collection::vec`] /
//! [`collection::btree_set`], [`array::uniform4`], and the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test dependency: generation is a deterministic per-test splitmix64
//! stream (no persistence files), and failing cases are reported without
//! shrinking.

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod array;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks one strategy uniformly among the listed alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the enclosing property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
