//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: (*r.end()).max(*r.start()),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned with as many distinct elements as a bounded number of draws
/// produced (mirroring real proptest's behavior of not looping forever).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 10 * target + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
