//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small `rand 0.8` API subset it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::shuffle`. The generator is a deterministic
//! splitmix64 stream — statistically plenty for workload generation and
//! tests, and reproducible across platforms.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every core
/// generator as in real `rand`.
pub trait Rng: RngCore {
    /// Draws a uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generator: a splitmix64 stream.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice utilities (the `shuffle` subset).
pub mod seq {
    use super::RngCore;

    /// In-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = a.gen_range(10..20);
            assert_eq!(x, b.gen_range(10..20));
            assert!((10..20).contains(&x));
        }
        let f = a.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&f));
        let v: i16 = a.gen_range(-5i16..=5);
        assert!((-5..=5).contains(&v));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(v, s, "shuffle left the slice sorted");
    }
}
