//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the criterion API subset its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `throughput`
//! / `bench_with_input`, and `Bencher::{iter, iter_batched}`. Timing is
//! plain wall-clock: each benchmark runs `sample_size` samples and prints
//! the fastest per-iteration time. No statistics, plots, or baselines.

use std::fmt::Display;
pub use std::hint::black_box;
use std::time::Instant;

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        b.report(name, None);
        self
    }
}

/// Unit the per-iteration rate is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput unit reported for each benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Controls how `iter_batched` amortizes setup cost; ignored here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    best_ns: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            best_ns: None,
        }
    }

    fn record(&mut self, ns: f64) {
        self.best_ns = Some(match self.best_ns {
            Some(b) => b.min(ns),
            None => ns,
        });
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.record(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.record(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let ns = self.best_ns.unwrap_or(f64::NAN);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / ns * 1e3;
                println!("{name:<48} {ns:>12.0} ns/iter  {meps:>8.1} Melem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let mbps = n as f64 / ns * 1e3;
                println!("{name:<48} {ns:>12.0} ns/iter  {mbps:>8.1} MB/s");
            }
            None => println!("{name:<48} {ns:>12.0} ns/iter"),
        }
    }
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
