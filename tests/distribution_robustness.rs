//! Distribution robustness: the EIS kernels must be correct and keep
//! their performance characteristics across realistic RID-set shapes —
//! clustered index scans, Zipf-skewed keys, foreign-key subsets, and
//! heavily skewed probe/build sizes.

use dbasip::dbisa::{run_set_op, ProcModel, SetOpKind};
use dbasip::synth::{fmax_mhz, Tech};
use dbasip::workloads::{
    set_pair_with_selectivity, skewed_pair, sorted_set, subset_pair, Distribution,
};
use std::collections::BTreeSet;

fn reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
    let sa: BTreeSet<u32> = a.iter().copied().collect();
    let sb: BTreeSet<u32> = b.iter().copied().collect();
    match kind {
        SetOpKind::Intersect => sa.intersection(&sb).copied().collect(),
        SetOpKind::Union => sa.union(&sb).copied().collect(),
        SetOpKind::Difference => sa.difference(&sb).copied().collect(),
    }
}

#[test]
fn all_distributions_compute_correctly() {
    let dists = [
        Distribution::Uniform,
        Distribution::Clustered { run_len: 16 },
        Distribution::Dense,
        Distribution::ZipfGaps { theta_x10: 12 },
    ];
    let model = ProcModel::Dba2LsuEis { partial: true };
    for (k, da) in dists.iter().enumerate() {
        for (j, db) in dists.iter().enumerate() {
            let a = sorted_set(800, *da, 11 + k as u64);
            let b = sorted_set(700, *db, 23 + j as u64);
            for kind in [
                SetOpKind::Intersect,
                SetOpKind::Union,
                SetOpKind::Difference,
            ] {
                let r = run_set_op(model, kind, &a, &b).unwrap();
                assert_eq!(
                    r.result,
                    reference(kind, &a, &b),
                    "{da:?} x {db:?} {kind:?}"
                );
            }
        }
    }
}

#[test]
fn subset_inputs_behave_like_100_percent_selectivity() {
    // b ⊆ a: the intersection equals b, the difference removes exactly b.
    let (a, b) = subset_pair(2000, 500, Distribution::Clustered { run_len: 8 }, 3);
    let model = ProcModel::Dba2LsuEis { partial: true };
    let isect = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
    assert_eq!(isect.result, b);
    let diff = run_set_op(model, SetOpKind::Difference, &a, &b).unwrap();
    assert_eq!(diff.result.len(), a.len() - b.len());
    let union = run_set_op(model, SetOpKind::Union, &a, &b).unwrap();
    assert_eq!(union.result, a);
}

#[test]
fn skewed_sizes_throughput_tracks_the_smaller_set() {
    // 50:1 size skew: the kernel consumes mostly A blocks; throughput per
    // (la + lb) should stay in the EIS regime.
    let (a, b) = skewed_pair(5000, 100, 50, 9);
    let model = ProcModel::Dba2LsuEis { partial: true };
    let f = fmax_mhz(model, &Tech::tsmc65lp());
    let r = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
    assert_eq!(r.result.len(), 50);
    let meps = r.throughput_meps((a.len() + b.len()) as u64, f);
    assert!(
        meps > 800.0,
        "skewed intersection should still stream at EIS speed, got {meps:.0}"
    );
}

#[test]
fn clustered_data_does_not_change_cycle_class() {
    // The cycle model is value-oblivious given the same consumption
    // pattern; clustered vs uniform at the same selectivity must land in
    // the same cycle class (within 20 %).
    let model = ProcModel::Dba2LsuEis { partial: true };
    let (a1, b1) = set_pair_with_selectivity(2000, 2000, 0.5, 4);
    let r_uniform = run_set_op(model, SetOpKind::Intersect, &a1, &b1).unwrap();

    // Build a clustered 50%-overlap pair.
    let base = sorted_set(3000, Distribution::Clustered { run_len: 32 }, 5);
    let a2: Vec<u32> = base[..2000].to_vec();
    let b2: Vec<u32> = base[1000..3000].to_vec();
    let r_clustered = run_set_op(model, SetOpKind::Intersect, &a2, &b2).unwrap();

    let c1 = r_uniform.cycles as f64 / 4000.0;
    let c2 = r_clustered.cycles as f64 / 4000.0;
    assert!(
        (c1 / c2 - 1.0).abs() < 0.35,
        "cycles/element diverged: uniform {c1:.3} vs clustered {c2:.3}"
    );
}
