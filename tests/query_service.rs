//! End-to-end tests of the durable serving stack through the `dbasip`
//! facade: snapshot-isolated concurrent readers, first-committer-wins
//! OCC with a typed retryable error for the loser, admission-queue
//! shedding under a synchronized burst, and crash recovery of state
//! built entirely through the service.

use dbasip::dbisa::ProcModel;
use dbasip::query::{Arrival, Predicate, QueryError, QueryService, Reply, Request, ServiceConfig};
use dbasip::storage::{Columns, MemDisk};
use std::sync::Arc;
use std::thread;

const MODEL: ProcModel = ProcModel::Dba2LsuEis { partial: true };

fn items(n: u32) -> Columns {
    vec![
        ("color".into(), (0..n).map(|i| i % 5).collect()),
        ("size".into(), (0..n).map(|i| i % 3).collect()),
    ]
}

fn open_seeded(n: u32) -> QueryService<MemDisk> {
    let mut s = QueryService::open(MemDisk::new(), MODEL, ServiceConfig::default()).unwrap();
    let mut txn = s.store().begin();
    txn.create_table("items", items(n));
    s.store_mut().commit(txn).unwrap();
    s
}

#[test]
fn occ_two_writers_loser_gets_typed_retryable_error_and_retry_succeeds() {
    let mut s = open_seeded(30);

    // Two transactions begin against the same generation.
    let mut winner = s.store().begin();
    winner.append_rows(
        "items",
        vec![("color".into(), vec![1]), ("size".into(), vec![1])],
    );
    let mut loser = s.store().begin();
    loser.append_rows(
        "items",
        vec![("color".into(), vec![2]), ("size".into(), vec![2])],
    );

    s.store_mut().commit(winner).expect("first committer wins");
    let err: QueryError = s.store_mut().commit(loser).unwrap_err().into();
    match &err {
        QueryError::WriteConflict {
            base_gen,
            current_gen,
        } => {
            assert!(current_gen > base_gen, "{err}");
        }
        other => panic!("expected WriteConflict, got {other:?}"),
    }
    assert!(err.is_retryable(), "OCC conflicts must be retryable");

    // The canonical client loop: begin again against the new
    // generation, and the retry lands.
    let mut retry = s.store().begin();
    retry.append_rows(
        "items",
        vec![("color".into(), vec![2]), ("size".into(), vec![2])],
    );
    s.store_mut()
        .commit(retry)
        .expect("retry on fresh generation");
    assert_eq!(s.view().table("items").unwrap().columns[0].1.len(), 32);
}

#[test]
fn readers_hold_their_snapshot_across_threads_while_writers_commit() {
    let mut s = open_seeded(24);
    let before = s.view();
    let rows_before = before.table("items").unwrap().columns[0].1.len();

    // Writers advance the store while the old view is alive.
    for _ in 0..3 {
        let mut txn = s.store().begin();
        txn.append_rows(
            "items",
            vec![("color".into(), vec![9]), ("size".into(), vec![9])],
        );
        s.store_mut().commit(txn).unwrap();
    }
    let after = s.view();

    // Views are plain Arcs — ship them to other threads and read there.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let v = if i % 2 == 0 {
                before.clone()
            } else {
                after.clone()
            };
            thread::spawn(move || v.table("items").map(|t| t.columns[0].1.len()))
        })
        .collect();
    let lens: Vec<usize> = handles
        .into_iter()
        .map(|h| h.join().unwrap().unwrap())
        .collect();
    assert_eq!(
        lens,
        vec![rows_before, rows_before + 3, rows_before, rows_before + 3]
    );
    assert_eq!(
        before.table("items").unwrap().columns[0].1.len(),
        rows_before
    );
}

#[test]
fn a_burst_beyond_queue_capacity_sheds_with_overloaded() {
    let mut s = open_seeded(24);
    let burst: Vec<Arrival> = (0..10)
        .map(|_| {
            Arrival::new(
                0,
                Request::Query {
                    table: "items".into(),
                    predicate: Predicate::eq("color", 1).and(Predicate::eq("size", 1)),
                },
            )
        })
        .collect();
    let mut svc = QueryService::open(
        s.store_mut().disk_mut().clone(),
        MODEL,
        ServiceConfig {
            queue_cap: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let report = svc.run(&burst);
    // All ten land on the same cycle, so the server hasn't started yet:
    // the queue fills to capacity and everything beyond is shed.
    assert_eq!(report.stats.shed, 7);
    assert_eq!(report.stats.admitted, 3);
    for c in report.completions.iter().filter(|c| c.result.is_err()) {
        match c.result.as_ref().unwrap_err() {
            QueryError::Overloaded { queue_depth } => {
                assert_eq!(*queue_depth, 3);
                assert!(c.latency() == 0, "shed without executing");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
}

#[test]
fn deadlines_bound_admitted_work_and_are_fatal() {
    let mut s = open_seeded(24);
    let mut svc = QueryService::open(
        s.store_mut().disk_mut().clone(),
        MODEL,
        ServiceConfig {
            deadline: Some(40),
            ..Default::default()
        },
    )
    .unwrap();
    let report = svc.run(&[Arrival::new(
        0,
        Request::Query {
            table: "items".into(),
            predicate: Predicate::eq("color", 1).and(Predicate::eq("size", 1)),
        },
    )]);
    let c = &report.completions[0];
    match c.result.as_ref().unwrap_err() {
        e @ QueryError::DeadlineExceeded { budget } => {
            assert_eq!(*budget, 40);
            assert!(!e.is_retryable(), "deadline expiry must not burn retries");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(c.retries, 0);
}

#[test]
fn state_built_through_the_service_survives_crash_recovery() {
    let workload: Vec<Arrival> = std::iter::once(Arrival::new(
        0,
        Request::Create {
            table: "items".into(),
            columns: items(12),
        },
    ))
    .chain((1..=6).map(|i| {
        Arrival::new(
            i * 10_000,
            Request::Append {
                table: "items".into(),
                rows: vec![("color".into(), vec![i as u32]), ("size".into(), vec![0])],
            },
        )
    }))
    .collect();

    let mut svc = QueryService::open(MemDisk::new(), MODEL, ServiceConfig::default()).unwrap();
    let report = svc.run(&workload);
    assert_eq!(report.stats.succeeded, 7);
    assert!(matches!(
        report.completions[6].result,
        Ok(Reply::Committed(_))
    ));
    let digest = svc.store().state_digest();

    let mut disk = svc.into_store().into_disk();
    disk.crash();
    let mut recovered = QueryService::open(disk, MODEL, ServiceConfig::default()).unwrap();
    assert_eq!(recovered.store().state_digest(), digest);

    // And the recovered service answers queries over the replayed rows.
    let report = recovered.run(&[Arrival::new(
        0,
        Request::Query {
            table: "items".into(),
            predicate: Predicate::eq("color", 3).and(Predicate::eq("size", 0)),
        },
    )]);
    match &report.completions[0].result {
        Ok(Reply::Rids(rids)) => assert!(!rids.is_empty()),
        other => panic!("query after recovery failed: {other:?}"),
    }
}

#[test]
fn views_are_send_and_arc_shareable() {
    let s = open_seeded(12);
    let view = Arc::new(s.view());
    let v2 = Arc::clone(&view);
    let t = thread::spawn(move || v2.table("items").unwrap().columns.len());
    assert_eq!(t.join().unwrap(), 2);
}
