//! Property tests of the query executor: arbitrary tables and predicate
//! trees must produce exactly the RIDs a full table scan produces, on
//! every processor model.

use dbasip::dbisa::ProcModel;
use dbasip::query::{Predicate, QueryEngine, Table};
use proptest::prelude::*;

/// A random three-column table of up to 400 rows with small domains so
/// predicates actually select something.
fn table_strategy() -> impl Strategy<Value = Table> {
    (20usize..400).prop_flat_map(|rows| {
        (
            proptest::collection::vec(0u32..6, rows),
            proptest::collection::vec(0u32..40, rows),
            proptest::collection::vec(0u32..4, rows),
        )
            .prop_map(|(c0, c1, c2)| {
                Table::build("t", &[("color", c0), ("size", c1), ("region", c2)])
            })
    })
}

/// Random predicate trees up to depth 3 over the three columns.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        (0u32..6).prop_map(|v| Predicate::eq("color", v)),
        (0u32..40, 0u32..20).prop_map(|(lo, d)| Predicate::between("size", lo, lo + d)),
        (0u32..4).prop_map(|v| Predicate::eq("region", v)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.and_not(b)),
        ]
    })
}

fn scan(table: &Table, pred: &Predicate) -> Vec<u32> {
    (0..table.n_rows)
        .filter(|&rid| pred.matches(&|c: &str| table.column(c).expect("column")[rid as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn executor_equals_full_scan(table in table_strategy(), pred in predicate_strategy()) {
        let expect = scan(&table, &pred);
        for model in [
            ProcModel::Mini108,
            ProcModel::Dba1LsuEis { partial: true },
            ProcModel::Dba2LsuEis { partial: false },
        ] {
            let out = QueryEngine::new(model).execute(&table, &pred).unwrap();
            prop_assert_eq!(&out.rids, &expect, "{} {:?}", model.name(), pred);
        }
    }

    #[test]
    fn order_by_and_sum_are_consistent(table in table_strategy(), pred in predicate_strategy()) {
        let engine = QueryEngine::new(ProcModel::Dba2LsuEis { partial: true });
        let out = engine.execute(&table, &pred).unwrap();
        let sorted = engine.order_by(&table, &out.rids, "size").unwrap();
        prop_assert!(sorted.values.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(sorted.values.len(), out.rids.len());
        let (sum, _) = engine.sum(&table, &out.rids, "size").unwrap();
        let expect: u32 = sorted.values.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(sum, expect);
    }
}
