//! End-to-end reconciliation tests of the service telemetry plane: the
//! counters exposed by `repro serve --metrics` must agree exactly with
//! the admission-control bookkeeping, the latency histogram must hold
//! one sample per admitted request, the exposition must be
//! byte-deterministic, and the injected overload burst must fire
//! exactly the expected SLO alerts.

use dbasip::harness::{monitor, serve};
use dbasip::observe::telemetry::{AlertKind, Outcome, Phase};

#[test]
fn telemetry_counters_reconcile_with_admission_control() {
    let s = serve::run(0.25);
    let t = &s.telemetry;
    let snap = &s.snapshot;

    // One record per offered request, in qid order.
    assert_eq!(t.records.len() as u64, snap.requests);
    for (i, r) in t.records.iter().enumerate() {
        assert_eq!(r.qid, i as u64);
    }

    // The latency histogram holds exactly one sample per admitted
    // request — its count is the number of serve spans.
    assert_eq!(t.latency.count(), snap.admitted);

    // shed + succeeded + failed tiles the workload exactly.
    let shed = t
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Shed)
        .count() as u64;
    let ok = t
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Ok)
        .count() as u64;
    let failed = t
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Failed)
        .count() as u64;
    assert_eq!(shed, snap.shed);
    assert_eq!(ok, snap.succeeded);
    assert_eq!(failed, snap.failed);
    assert_eq!(shed + ok + failed, snap.requests);

    // Phase cycles tile each admitted record's latency; shed records
    // never accumulate phase time.
    for r in &t.records {
        if r.outcome == Outcome::Shed {
            assert_eq!(r.phases.total(), 0);
            assert_eq!(r.latency(), 0);
        } else {
            assert_eq!(r.phases.total(), r.latency(), "qid {}", r.qid);
        }
    }
    // And the per-phase totals are the sums of the admitted records.
    for (i, p) in Phase::ALL.iter().enumerate() {
        let expect: u64 = t
            .records
            .iter()
            .filter(|r| r.admitted())
            .map(|r| r.phases.get(*p))
            .sum();
        assert_eq!(t.phase_cycles[i], expect, "phase {}", p.name());
    }

    // Tenant counters cover every request exactly once.
    assert_eq!(
        t.tenant_requests.values().sum::<u64>(),
        snap.requests,
        "tenant partition must tile the workload"
    );

    // SLO windows partition the records too.
    let windowed: u64 = t.windows.iter().map(|w| w.requests).sum();
    assert_eq!(windowed, snap.requests);
}

#[test]
fn the_metrics_exposition_is_byte_deterministic() {
    let a = serve::run(0.25);
    let b = serve::run(0.25);
    assert_eq!(a.metrics(), b.metrics());
    assert_eq!(a.metrics_json(), b.metrics_json());
    // The exposition names the p99 query and its dominant phase.
    let text = a.metrics();
    assert!(text.contains("dbx_serve_p99_qid"));
    assert!(text.contains("dbx_serve_p99_phase_cycles{phase=\"queue\"}"));
    assert!(text.contains("dbx_serve_latency_cycles_bucket{le=\"+Inf\"}"));
    // The JSON twin carries the same headline counters.
    let json = a.metrics_json();
    assert!(json.contains("\"schema\":\"dbx-harness/telemetry/v1\""));
    assert!(json.contains(&format!("\"requests\":{}", a.snapshot.requests)));
}

#[test]
fn the_overload_burst_fires_exactly_the_expected_alerts() {
    let s = serve::run(0.25);
    let t = &s.telemetry;
    // At quarter scale the only SLO violation is the synchronized
    // burst's shedding: exactly one alert, of exactly one kind, in the
    // window holding the burst cycle (arrival 17 * 2000 = 34000).
    assert_eq!(t.alerts.len(), 1, "alerts: {:?}", t.alerts);
    let alert = &t.alerts[0];
    assert_eq!(alert.kind, AlertKind::ShedRateHigh);
    assert!(alert.window_start <= 34_000 && 34_000 < alert.window_end);
    assert!(alert.burn > 1.0, "a fired alert burns above 1x");
    assert!((alert.value / alert.target - alert.burn).abs() < 1e-9);

    // The monitor renders the same single alert.
    let m = monitor::run(0.25);
    assert_eq!(m.serve.telemetry.alerts, t.alerts);
    let rendered = m.render(3);
    assert_eq!(rendered.matches("ALERT").count(), 1);
    assert!(rendered.contains("shed_rate_high"));
}

#[test]
fn tail_attribution_names_the_dominant_phase_of_the_worst_queries() {
    let s = serve::run(0.25);
    let t = &s.telemetry;
    let tail = t.top_tail(3);
    assert_eq!(tail.len(), 3);
    // Worst first, admitted only.
    for pair in tail.windows(2) {
        assert!(pair[0].latency() >= pair[1].latency());
    }
    for r in &tail {
        assert!(r.admitted());
        // The named dominant phase really is the arg max.
        let dom = r.dominant_phase();
        for p in Phase::ALL {
            assert!(r.phases.get(dom) >= r.phases.get(p));
        }
    }
    // The p99 record's latency is the exact nearest-rank p99 the
    // snapshot reports (the snapshot ranks successful requests; with no
    // failures the populations coincide).
    assert_eq!(s.snapshot.failed, 0);
    let p99 = t.p99_record().expect("admitted requests exist");
    assert_eq!(p99.latency(), s.snapshot.p99_cycles);
    let report = s.top_tail_report(3);
    assert!(report.contains("dominant="));
}
