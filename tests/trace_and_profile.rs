//! Tooling-path integration: the profiler and tracer must give a usable
//! picture of a real EIS kernel run (the paper's tool-flow steps depend
//! on exactly this).

use dbasip::cpu::Processor;
use dbasip::cpu::{DMEM0_BASE, DMEM1_BASE};
use dbasip::dbisa::kernels::{hwset, SetLayout};
use dbasip::dbisa::{DbExtConfig, DbExtension, ProcModel, SetOpKind};

fn run_profiled(unroll: usize) -> Processor {
    let wiring = DbExtConfig::two_lsu(true);
    let a: Vec<u32> = (0..2000).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..2000).map(|i| 2 * i + (i % 2)).collect();
    let layout = SetLayout {
        a_base: DMEM0_BASE,
        a_len: a.len() as u32,
        b_base: DMEM1_BASE,
        b_len: b.len() as u32,
        c_base: DMEM1_BASE + 0x3000,
    };
    let prog = hwset::set_op_program(SetOpKind::Intersect, &wiring, &layout, unroll).unwrap();
    let model = ProcModel::Dba2LsuEis { partial: true };
    let mut p = Processor::new(model.cpu_config()).unwrap();
    p.attach_extension(Box::new(DbExtension::new(wiring)));
    p.enable_profiling();
    p.enable_tracing(256);
    p.load_program(prog).unwrap();
    p.mem.poke_words(layout.a_base, &a).unwrap();
    p.mem.poke_words(layout.b_base, &b).unwrap();
    p.run(10_000_000).unwrap();
    p
}

#[test]
fn profiler_attributes_the_eis_run_to_the_core_loop() {
    let p = run_profiled(8);
    let profile = p.profile().expect("profiling enabled");
    let hotspots = profile.hotspots(p.program().unwrap());
    assert_eq!(hotspots[0].region, "core_loop", "{hotspots:?}");
    assert!(
        hotspots[0].share > 0.85,
        "the unrolled loop must dominate: {:?}",
        hotspots[0]
    );
    // The epilogue exists but is cheap.
    assert!(hotspots
        .iter()
        .any(|h| h.region == "finish" || h.region == "epilogue"));
}

#[test]
fn trace_captures_the_alternating_bundle_schedule() {
    let p = run_profiled(4);
    let trace = p.trace().expect("tracing enabled");
    assert!(trace.recorded > 500);
    let rendered = trace.render(p.program().unwrap());
    // The steady-state pattern: STORE_SOP then LD_LDP_SHUFFLE, 1 cycle each.
    assert!(rendered.contains("Ext"), "{rendered}");
    // Per-instruction costs in steady state are 1 cycle (no stalls in the
    // EIS loop) — the tail of the trace is the epilogue, so check the
    // majority.
    let one_cycle = trace.entries().filter(|e| e.cost == 1).count();
    assert!(
        one_cycle * 10 >= trace.len() * 8,
        "most EIS instructions are single-cycle ({one_cycle}/{})",
        trace.len()
    );
}

#[test]
fn profiler_shows_the_scalar_bottleneck_moving() {
    // The tool-flow narrative: on the scalar core the data-dependent
    // branch dominates; with the EIS the loop body is pure extension ops.
    use dbasip::dbisa::kernels::scalar;
    let a: Vec<u32> = (0..2000).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..2000).map(|i| 2 * i + (i % 2)).collect();
    let layout = SetLayout {
        a_base: DMEM0_BASE,
        a_len: a.len() as u32,
        b_base: DMEM0_BASE + 0x4000,
        b_len: b.len() as u32,
        c_base: DMEM0_BASE + 0x8000,
    };
    let prog = scalar::set_op_program(SetOpKind::Intersect, &layout).unwrap();
    let mut p = Processor::new(ProcModel::Dba1Lsu.cpu_config()).unwrap();
    p.enable_profiling();
    p.load_program(prog).unwrap();
    p.mem.poke_words(layout.a_base, &a).unwrap();
    p.mem.poke_words(layout.b_base, &b).unwrap();
    let stats = p.run(10_000_000).unwrap();
    assert!(
        stats.counters.mispredict_rate() > 0.1,
        "the scalar merge branch must mispredict: {}",
        stats.counters.mispredict_rate()
    );
    let eis = run_profiled(8);
    assert!(
        eis.counters.mispredict_rate() < 0.05,
        "the EIS loop has almost no data-dependent branches: {}",
        eis.counters.mispredict_rate()
    );
}
