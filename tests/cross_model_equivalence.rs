//! Property-based cross-model equivalence: every processor configuration
//! (scalar baselines, all EIS wirings, and the streamed prefetcher path)
//! must compute exactly the same set operations and sorts as a host-side
//! reference, for arbitrary inputs.

use dbasip::dbisa::stream::{stream_set_op, StreamConfig};
use dbasip::dbisa::{run_set_op, run_sort, ProcModel, SetOpKind};
use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_set_strategy(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    btree_set(0u32..u32::MAX - 1, 0..max_len).prop_map(|s| s.into_iter().collect())
}

/// A denser variant: values clustered in a small range so overlaps and
/// long equal stretches actually occur.
fn dense_set_strategy(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    btree_set(0u32..2048, 0..max_len).prop_map(|s| s.into_iter().collect())
}

fn reference(kind: SetOpKind, a: &[u32], b: &[u32]) -> Vec<u32> {
    let sa: BTreeSet<u32> = a.iter().copied().collect();
    let sb: BTreeSet<u32> = b.iter().copied().collect();
    match kind {
        SetOpKind::Intersect => sa.intersection(&sb).copied().collect(),
        SetOpKind::Union => sa.union(&sb).copied().collect(),
        SetOpKind::Difference => sa.difference(&sb).copied().collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_models_agree_on_sparse_sets(
        a in sorted_set_strategy(120),
        b in sorted_set_strategy(120),
    ) {
        for kind in [SetOpKind::Intersect, SetOpKind::Union, SetOpKind::Difference] {
            let expect = reference(kind, &a, &b);
            for model in ProcModel::all() {
                let r = run_set_op(model, kind, &a, &b).unwrap();
                prop_assert_eq!(&r.result, &expect, "{} {:?}", model.name(), kind);
            }
        }
    }

    #[test]
    fn all_models_agree_on_dense_sets(
        a in dense_set_strategy(150),
        b in dense_set_strategy(150),
    ) {
        for kind in [SetOpKind::Intersect, SetOpKind::Union, SetOpKind::Difference] {
            let expect = reference(kind, &a, &b);
            for model in [
                ProcModel::Dba1LsuEis { partial: true },
                ProcModel::Dba1LsuEis { partial: false },
                ProcModel::Dba2LsuEis { partial: true },
                ProcModel::Dba2LsuEis { partial: false },
            ] {
                let r = run_set_op(model, kind, &a, &b).unwrap();
                prop_assert_eq!(&r.result, &expect, "{} {:?}", model.name(), kind);
            }
        }
    }

    #[test]
    fn streamed_execution_agrees(
        a in dense_set_strategy(400),
        b in dense_set_strategy(400),
    ) {
        for kind in [SetOpKind::Intersect, SetOpKind::Union, SetOpKind::Difference] {
            let expect = reference(kind, &a, &b);
            let cfg = StreamConfig { chunk_elems: 64, unroll: 4 };
            let r = stream_set_op(kind, &a, &b, cfg).unwrap();
            prop_assert_eq!(&r.result, &expect, "{:?}", kind);
        }
    }

    #[test]
    fn all_models_sort_arbitrary_data(data in pvec(any::<u32>(), 0..300)) {
        let mut expect = data.clone();
        expect.sort_unstable();
        // Sentinel-heavy non-multiple-of-4 inputs are rejected by design;
        // make the length a multiple of 4 when MAX appears.
        let mut data = data;
        if data.contains(&u32::MAX) {
            while data.len() % 4 != 0 {
                data.pop();
            }
            expect = data.clone();
            expect.sort_unstable();
        }
        for model in ProcModel::all() {
            let r = run_sort(model, &data).unwrap();
            prop_assert_eq!(&r.result, &expect, "{}", model.name());
        }
    }

    #[test]
    fn host_baselines_agree_with_reference(
        a in dense_set_strategy(300),
        b in dense_set_strategy(300),
    ) {
        prop_assert_eq!(
            dbasip::x86ref::swset::intersect(&a, &b),
            reference(SetOpKind::Intersect, &a, &b)
        );
        prop_assert_eq!(
            dbasip::x86ref::swset::union(&a, &b),
            reference(SetOpKind::Union, &a, &b)
        );
        prop_assert_eq!(
            dbasip::x86ref::swset::difference(&a, &b),
            reference(SetOpKind::Difference, &a, &b)
        );
    }

    #[test]
    fn host_swsort_agrees_with_std(data in pvec(any::<u32>(), 0..500)) {
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut got = data;
        dbasip::x86ref::swsort::sort(&mut got);
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn identical_sets_edge_case_all_models() {
    let a: Vec<u32> = (0..257).map(|i| 7 * i).collect();
    for kind in [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ] {
        let expect = reference(kind, &a, &a);
        for model in ProcModel::all() {
            let r = run_set_op(model, kind, &a, &a).unwrap();
            assert_eq!(r.result, expect, "{} {kind:?}", model.name());
        }
    }
}

#[test]
fn adjacent_values_edge_case() {
    // Off-by-one neighbours: catches comparator boundary conditions.
    let a: Vec<u32> = (0..200).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..200).map(|i| 2 * i + 1).collect();
    for model in ProcModel::all() {
        let r = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
        assert!(r.result.is_empty(), "{}", model.name());
        let r = run_set_op(model, SetOpKind::Union, &a, &b).unwrap();
        assert_eq!(r.result.len(), 400, "{}", model.name());
    }
}
