//! End-to-end fault injection and resilience across the stack: seeded
//! soft-error campaigns against the kernel runners, with the protection
//! schemes and recovery policies that must contain them.
//!
//! The contract under test, per scheme:
//! * SECDED + correctable faults → bit-identical results, no trap;
//! * SECDED + uncorrectable faults → a *precise* machine fault, never
//!   wrong data;
//! * parity + retry → the fault is detected and the re-run reproduces
//!   the fault-free result;
//! * no protection → the escape counter flags consumed corruption.

use dbasip::cpu::{FaultCause, SimError, IMEM_BASE};
use dbasip::dbisa::{
    run_set_op, run_set_op_with, run_sort, run_sort_with, ProcModel, RecoveryPolicy, RunOptions,
    SetOpKind,
};
use dbasip::faults::{FaultPlan, FaultTarget, ProtectionKind};
use dbasip::workloads::{sorted_set, Distribution};
use proptest::prelude::*;

const MODEL: ProcModel = ProcModel::Dba2LsuEis { partial: true };

const ALL_KINDS: [SetOpKind; 3] = [
    SetOpKind::Intersect,
    SetOpKind::Union,
    SetOpKind::Difference,
];

fn secded_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        protection: Some(ProtectionKind::Secded),
        fault_plan: Some(plan),
        policy: RecoveryPolicy::FailFast,
        watchdog: None,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A correctable-only campaign (single-bit flips on *distinct* words)
    /// under SECDED must leave every set operation and the sort
    /// bit-identical to the fault-free run, with nothing escaping.
    #[test]
    fn correctable_faults_never_change_results(
        seed in 0u64..1_000,
        words in proptest::collection::btree_set(0u64..2000, 1..4usize),
        bit in 0u8..32,
        cycle in 0u64..400,
    ) {
        let a = sorted_set(400, Distribution::Uniform, seed.wrapping_add(1));
        let b = sorted_set(348, Distribution::Uniform, seed ^ 0x5a5a);
        // Distinct words guarantee no word accumulates two flips, which
        // would exceed SECDED's correction capability.
        let mut plan = FaultPlan::new();
        for (i, &word) in words.iter().enumerate() {
            plan = plan.with_bit_flip(
                FaultTarget::Dmem((word % 2) as usize),
                cycle + 37 * i as u64,
                word,
                (bit + i as u8) % 32,
            );
        }
        for kind in ALL_KINDS {
            let clean = run_set_op(MODEL, kind, &a, &b).unwrap();
            let run = run_set_op_with(MODEL, kind, &a, &b, &secded_opts(plan.clone())).unwrap();
            prop_assert_eq!(&run.result, &clean.result, "{:?} diverged", kind);
            prop_assert_eq!(run.faults.escaped, 0);
            prop_assert_eq!(run.retries, 0);
        }
        let clean = run_sort(MODEL, &a).unwrap();
        let run = run_sort_with(MODEL, &a, &secded_opts(plan)).unwrap();
        prop_assert_eq!(&run.result, &clean.result, "sort diverged");
        prop_assert_eq!(run.faults.escaped, 0);
    }
}

#[test]
fn double_flip_under_secded_is_a_precise_trap_never_wrong_data() {
    let a: Vec<u32> = (0..256).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..256).map(|i| 3 * i).collect();
    // Two flips in the same word exceed SECDED's single-bit correction.
    let plan = FaultPlan::new()
        .with_bit_flip(FaultTarget::Dmem(0), 0, 17, 3)
        .with_bit_flip(FaultTarget::Dmem(0), 0, 17, 9);
    let e = run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &secded_opts(plan)).unwrap_err();
    match e {
        SimError::Fault(mf) => {
            assert!(
                matches!(mf.cause, FaultCause::UncorrectableEcc { mem: "dmem0", .. }),
                "{mf:?}"
            );
            assert!(mf.pc >= IMEM_BASE, "precise trap pc {:#x}", mf.pc);
            assert!(mf.cycle > 0);
        }
        other => panic!("expected a machine fault, got {other:?}"),
    }
}

#[test]
fn parity_plus_retry_reproduces_the_fault_free_result() {
    let a: Vec<u32> = (0..300).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..300).map(|i| 3 * i).collect();
    let clean = run_set_op(MODEL, SetOpKind::Union, &a, &b).unwrap();
    let opts = RunOptions {
        protection: Some(ProtectionKind::Parity),
        fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 21, 12)),
        policy: RecoveryPolicy::Retry { max_retries: 2 },
        watchdog: None,
        ..Default::default()
    };
    let run = run_set_op_with(MODEL, SetOpKind::Union, &a, &b, &opts).unwrap();
    assert_eq!(run.result, clean.result);
    assert!(
        run.retries >= 1,
        "parity can only detect; a re-run is needed"
    );
    assert!(run.faults.detected >= 1);
    assert_eq!(run.faults.escaped, 0);
    let mf = run.recovered_fault.expect("the survived fault is recorded");
    assert!(matches!(
        mf.cause,
        FaultCause::ParityError { mem: "dmem0", .. }
    ));
}

#[test]
fn unprotected_memories_flag_consumed_corruption() {
    let a: Vec<u32> = (0..300).map(|i| 2 * i).collect();
    let b: Vec<u32> = (0..300).map(|i| 3 * i).collect();
    let opts = RunOptions {
        protection: Some(ProtectionKind::None),
        fault_plan: Some(FaultPlan::new().with_bit_flip(FaultTarget::Dmem(0), 0, 18, 0)),
        policy: RecoveryPolicy::FailFast,
        watchdog: None,
        ..Default::default()
    };
    // No protection: the run completes "successfully" — only the escape
    // counter tells the caller the result consumed corrupted data.
    let run = run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &opts).unwrap();
    assert!(run.faults.escaped >= 1);
    assert_eq!(run.faults.corrected, 0);
    assert_eq!(run.faults.detected, 0);
}

/// The CI fault matrix: a seeded campaign (grid point selected with
/// `DBX_FAULT_SEED`) against every local-store configuration, under
/// parity + degrade-to-scalar. Whatever the campaign hits, the answer
/// must equal the fault-free reference and nothing may escape.
#[test]
fn seeded_matrix_across_models_recovers_everywhere() {
    let base: u64 = std::env::var("DBX_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let a = sorted_set(300, Distribution::Uniform, 5);
    let b = sorted_set(300, Distribution::Clustered { run_len: 4 }, 6);
    let models = [
        ProcModel::Dba1Lsu,
        ProcModel::Dba2Lsu,
        ProcModel::Dba1LsuEis { partial: true },
        ProcModel::Dba2LsuEis { partial: true },
    ];
    for (mi, model) in models.into_iter().enumerate() {
        let clean = run_set_op(model, SetOpKind::Intersect, &a, &b).unwrap();
        for round in 0..3u64 {
            let seed = base ^ (17 * mi as u64 + round);
            let plan =
                FaultPlan::seeded_dmem_flips(seed, 4, model.cpu_config().n_lsus, 4096, 5_000);
            let opts = RunOptions {
                protection: Some(ProtectionKind::Parity),
                fault_plan: Some(plan),
                policy: RecoveryPolicy::DegradeToScalar { max_retries: 1 },
                watchdog: None,
                ..Default::default()
            };
            let run = run_set_op_with(model, SetOpKind::Intersect, &a, &b, &opts).unwrap();
            assert_eq!(
                run.result,
                clean.result,
                "{} seed {seed} diverged",
                model.name()
            );
            assert_eq!(run.faults.escaped, 0, "{} seed {seed}", model.name());
        }
    }
}

#[test]
fn seeded_campaigns_are_deterministic_end_to_end() {
    // Override the campaign seed with DBX_FAULT_SEED=<n> to explore.
    let seed: u64 = std::env::var("DBX_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let p1 = FaultPlan::seeded_dmem_flips(seed, 8, 2, 4096, 10_000);
    let p2 = FaultPlan::seeded_dmem_flips(seed, 8, 2, 4096, 10_000);
    assert_eq!(p1, p2, "same seed, same campaign");
    assert_ne!(
        p1,
        FaultPlan::seeded_dmem_flips(seed ^ 1, 8, 2, 4096, 10_000),
        "different seed, different campaign"
    );

    let a = sorted_set(500, Distribution::Clustered { run_len: 8 }, 7);
    let b = sorted_set(500, Distribution::Uniform, 9);
    let opts = RunOptions {
        protection: Some(ProtectionKind::Parity),
        fault_plan: Some(p1),
        policy: RecoveryPolicy::DegradeToScalar { max_retries: 1 },
        watchdog: None,
        ..Default::default()
    };
    let r1 = run_set_op_with(MODEL, SetOpKind::Difference, &a, &b, &opts).unwrap();
    let r2 = run_set_op_with(MODEL, SetOpKind::Difference, &a, &b, &opts).unwrap();
    assert_eq!(r1.result, r2.result);
    assert_eq!(r1.retries, r2.retries);
    assert_eq!(r1.faults, r2.faults);
    assert_eq!(r1.cycles, r2.cycles, "replayable to the cycle");
    // Whatever the campaign did, the answer is the fault-free one.
    let clean = run_set_op(MODEL, SetOpKind::Difference, &a, &b).unwrap();
    assert_eq!(r1.result, clean.result);
}
