//! Integration tests of the ISA-extension mining pipeline: the paper's
//! hand-designed shapes must fall out of the scalar kernels, the
//! snapshot must be byte-deterministic, and the DFG builder must agree
//! with an independent def-use shadow model on arbitrary programs.

use dbasip::analysis::dse::{dfg_of, mine, CandidateClass, DseConfig, Src, WeightModel};
use dbasip::cpu::config::CpuConfig;
use dbasip::cpu::isa::{Instr, LsWidth, Reg};
use dbasip::cpu::ProgramBuilder;
use dbasip::harness::dse as harness_dse;
use proptest::prelude::*;

const A2: Reg = Reg(2);
const A3: Reg = Reg(3);

/// The FLIX-capable enumeration envelope every test mines with.
fn wide_cfg() -> DseConfig {
    DseConfig::from_cpu(&CpuConfig::local_store_core(2, 64))
}

// ---- end-to-end over the kernel suite -------------------------------------

#[test]
fn miner_rediscovers_the_paper_shapes_with_positive_savings_and_cost() {
    let d = harness_dse::run();
    for class in [
        CandidateClass::SopLike,
        CandidateClass::StSLike,
        CandidateClass::Novel,
        CandidateClass::Bundle,
    ] {
        let p = d
            .best_of(class)
            .unwrap_or_else(|| panic!("no {} candidate mined", class.tag()));
        assert!(
            p.candidate.cycles_saved > 0,
            "{} must save cycles",
            p.candidate.signature
        );
        assert!(
            p.price.area_ge > 0.0 && p.price.fmax_mhz > 0.0 && p.price.power_mw > 0.0,
            "{} must carry a synthesis price",
            p.candidate.signature
        );
    }
    // The SOP shape is the paper's two-loads-plus-compare step.
    let sop = d.best_of(CandidateClass::SopLike).unwrap();
    assert!(
        sop.candidate.signature.matches("l32i").count() == 2,
        "sop-like shape should fuse both element loads: {}",
        sop.candidate.signature
    );
    assert!(!d.frontier.is_empty(), "frontier must not be empty");
}

#[test]
fn dse_snapshot_is_byte_identical_across_runs() {
    let a = harness_dse::run();
    let b = harness_dse::run();
    assert_eq!(
        a.snapshot().to_string(),
        b.snapshot().to_string(),
        "snapshot JSON must be byte-stable"
    );
}

// ---- analysis edge cases ---------------------------------------------------

#[test]
fn empty_program_mines_nothing() {
    let p = ProgramBuilder::new().build().unwrap();
    let m = mine(&p, None, &wide_cfg(), &WeightModel::Static);
    assert!(m.candidates.is_empty());
    assert_eq!(m.base_cycles, 0);
    assert!(dfg_of(&p, None).windows.is_empty());
}

#[test]
fn single_block_self_loop_weights_its_own_back_edge() {
    // One block that branches to itself: the smallest possible CFG
    // cycle. The candidate inside must be weighted by the default trip
    // count, not 1 (and the builder must not loop forever).
    let mut b = ProgramBuilder::new();
    b.label("top").addi(A2, A2, 4).bnez(A2, "top").halt();
    let p = b.build().unwrap();
    let m = mine(&p, None, &wide_cfg(), &WeightModel::Static);
    let fused = m
        .candidates
        .iter()
        .find(|c| c.signature == "addi(in0);bnez(%0)")
        .expect("bump+test shape in the self-loop");
    assert_eq!(
        fused.cycles_saved, 16,
        "one fused cycle saved per default-trip iteration"
    );
}

#[test]
fn flix_bundle_as_final_instruction_is_handled() {
    // A bundle at the last pc: nothing follows it, so every slot def is
    // window-final. The DFG must still expand the slots and bundle
    // enumeration must still emit the template.
    let mut b = ProgramBuilder::new();
    b.movi(A2, 1).movi(A3, 2).flix(vec![
        Instr::Addi {
            r: A2,
            s: A2,
            imm: 4,
        },
        Instr::Addi {
            r: A3,
            s: A3,
            imm: 4,
        },
    ]);
    let p = b.build().unwrap();
    let d = dfg_of(&p, None);
    assert_eq!(d.windows.len(), 1);
    let slots: Vec<Option<u8>> = d.windows[0].nodes.iter().map(|n| n.slot).collect();
    assert_eq!(slots, vec![None, None, Some(0), Some(1)]);
    let m = mine(&p, None, &wide_cfg(), &WeightModel::Static);
    assert!(
        m.candidates
            .iter()
            .any(|c| c.class == CandidateClass::Bundle),
        "bundle template from a program-final FLIX: {:#?}",
        m.candidates
    );
}

// ---- DFG ↔ def-use round-trip property -------------------------------------

fn straight_instr() -> impl Strategy<Value = Instr> {
    let r = || (0u8..16).prop_map(Reg::new);
    prop_oneof![
        (r(), -2048i32..2048).prop_map(|(rr, imm)| Instr::Movi { r: rr, imm }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Add { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Sub { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Minu { r: a, s, t }),
        (r(), r(), any::<i16>()).prop_map(|(a, s, imm)| Instr::Addi { r: a, s, imm }),
        (r(), r(), 0u16..1024).prop_map(|(a, s, off)| Instr::Load {
            width: LsWidth::W32,
            r: a,
            s,
            off
        }),
        (r(), r(), 0u16..1024).prop_map(|(t, s, off)| Instr::Store {
            width: LsWidth::W32,
            t,
            s,
            off
        }),
    ]
}

proptest! {
    /// On any straight-line program, every DFG operand edge must agree
    /// with an independently computed last-writer (def-use) relation,
    /// and the node's def mask with the instruction's destination.
    #[test]
    fn dfg_edges_roundtrip_the_def_use_relation(
        instrs in proptest::collection::vec(straight_instr(), 1..40)
    ) {
        let mut b = ProgramBuilder::new();
        for i in &instrs {
            b.inst(i.clone());
        }
        b.halt();
        let p = b.build().unwrap();
        let d = dfg_of(&p, None);
        prop_assert_eq!(d.windows.len(), 1);
        let w = &d.windows[0];
        prop_assert_eq!(w.nodes.len(), instrs.len(), "halt dropped, rest kept");

        let mut last_writer: [Option<usize>; 16] = [None; 16];
        for (k, i) in instrs.iter().enumerate() {
            let node = &w.nodes[k];
            let expected: Vec<Src> = i
                .src_regs()
                .iter()
                .map(|r| match last_writer[r.0 as usize] {
                    Some(p) => Src::Node(p),
                    None => Src::Reg(r.0),
                })
                .collect();
            prop_assert_eq!(&node.srcs, &expected, "operand edges of node {}", k);
            let deps = expected
                .iter()
                .filter_map(|s| match s {
                    Src::Node(p) => Some(1u64 << p),
                    _ => None,
                })
                .fold(0u64, |m, b| m | b);
            prop_assert_eq!(node.deps, deps);
            let defs = i.dest_reg().map(|r| 1u16 << r.0).unwrap_or(0);
            prop_assert_eq!(node.defs, defs);
            if let Some(rd) = i.dest_reg() {
                last_writer[rd.0 as usize] = Some(k);
            }
        }
    }
}
