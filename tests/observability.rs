//! Observability-layer integration: the trace a kernel run emits must be
//! viewer-loadable, cycle-exact against the run statistics, and strictly
//! free when recording is disabled.

use dbasip::dbisa::{run_set_op_with, run_sort_with, ProcModel, RunOptions, SetOpKind};
use dbasip::observe::{validate_chrome_trace, write_chrome_trace, Observer, TrackId};
use dbasip::query::{Predicate, QueryEngine, Table};
use dbasip::workloads::{set_pair_with_selectivity, sort_input, SortOrder};

const SEED: u64 = 0x5e7_0b5;
const MODEL: ProcModel = ProcModel::Dba2LsuEis { partial: true };

fn seeded_sets() -> (Vec<u32>, Vec<u32>) {
    set_pair_with_selectivity(2000, 2000, 0.5, SEED)
}

/// Runs the seeded intersection with recording on and returns the
/// Chrome-trace JSON plus the run's cycle count.
fn traced_intersection() -> (String, u64) {
    let (a, b) = seeded_sets();
    let (obs, sink) = Observer::memory();
    let opts = RunOptions {
        observer: obs,
        ..RunOptions::default()
    };
    let r = run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &opts).unwrap();
    drop(opts);
    let sink = std::rc::Rc::try_unwrap(sink).unwrap().into_inner();
    (write_chrome_trace(&sink), r.cycles)
}

#[test]
fn golden_seeded_intersection_trace_validates_and_is_deterministic() {
    let (text, cycles) = traced_intersection();
    let n_events = validate_chrome_trace(&text).expect("schema-valid Chrome trace");
    // Thread metadata + the kernel span + its region children + counters.
    assert!(n_events >= 5, "expected a populated trace, got {n_events}");
    assert!(text.contains("\"intersect\""), "kernel span present");
    assert!(text.contains("\"cat\":\"kernel\""));
    assert!(
        text.contains("\"cat\":\"region\""),
        "region attribution present"
    );
    assert!(text.contains("core_loop"), "hottest region is in the trace");
    assert!(
        text.contains(&format!("\"dur\":{cycles}")),
        "kernel span duration equals the run's cycle count"
    );
    // Same seed, same workload: the export is byte-identical.
    let (again, _) = traced_intersection();
    assert_eq!(text, again, "trace export must be deterministic");
}

#[test]
fn span_cycles_reconcile_with_run_stats_totals() {
    let (a, b) = seeded_sets();
    let sort_data = sort_input(2048, SortOrder::Random, SEED);
    let (obs, sink) = Observer::memory();
    let opts = RunOptions {
        observer: obs,
        ..RunOptions::default()
    };
    let mut expect: u64 = 0;
    for kind in [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ] {
        expect += run_set_op_with(MODEL, kind, &a, &b, &opts).unwrap().cycles;
    }
    expect += run_sort_with(MODEL, &sort_data, &opts).unwrap().cycles;
    drop(opts);
    let sink = std::rc::Rc::try_unwrap(sink).unwrap().into_inner();
    let got = sink.track_cycles(TrackId::Core(0), "kernel");
    // The acceptance bar is ±0.1%; the implementation is cycle-exact.
    let drift = (got as f64 - expect as f64).abs() / expect as f64;
    assert!(
        drift <= 0.001,
        "kernel spans total {got} cycles vs RunStats {expect} ({:.4}% off)",
        100.0 * drift
    );
    assert_eq!(got, expect, "span totals should reconcile exactly");
}

#[test]
fn query_operator_spans_tile_the_host_track() {
    let colors: Vec<u32> = (0..600).map(|i| i % 5).collect();
    let sizes: Vec<u32> = (0..600).map(|i| (i * 7) % 40).collect();
    let table = Table::build("t", &[("color", colors), ("size", sizes)]);
    let pred = Predicate::eq("color", 2).and(Predicate::between("size", 5, 30));

    let (obs, sink) = Observer::memory();
    let opts = RunOptions {
        observer: obs,
        ..RunOptions::default()
    };
    let engine = QueryEngine::with_options(MODEL, opts);
    let out = engine.execute(&table, &pred).unwrap();
    drop(engine);
    let sink = std::rc::Rc::try_unwrap(sink).unwrap().into_inner();

    // The root "query" overlay spans exactly the query's cycle cost, and
    // the per-operator spans underneath it sum to the same total.
    let query_cycles = sink.track_cycles(TrackId::Host, "query");
    assert_eq!(
        query_cycles,
        2 * out.cycles,
        "root overlay + operator spans"
    );
    let text = write_chrome_trace(&sink);
    validate_chrome_trace(&text).expect("query trace is schema-valid");
    assert!(text.contains("rows_out"));
}

#[test]
fn disabled_recording_is_free() {
    let (a, b) = seeded_sets();

    // Baseline: no observer at all (RunOptions::default() is disabled).
    let plain =
        run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &RunOptions::default()).unwrap();

    // Explicitly disabled observer: must behave identically.
    let disabled_opts = RunOptions {
        observer: Observer::disabled(),
        ..RunOptions::default()
    };
    let off = run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &disabled_opts).unwrap();
    assert_eq!(off.result, plain.result, "results byte-identical");
    assert_eq!(off.cycles, plain.cycles, "recording off adds zero cycles");
    assert_eq!(off.stats.counters, plain.stats.counters);
    assert!(off.profile.is_none(), "no profiling without an observer");

    // Recording on: the *simulated* cost must still be identical — the
    // trace is an observation, never a perturbation.
    let (obs, sink) = Observer::memory();
    let on_opts = RunOptions {
        observer: obs,
        ..RunOptions::default()
    };
    let on = run_set_op_with(MODEL, SetOpKind::Intersect, &a, &b, &on_opts).unwrap();
    drop(on_opts);
    let sink = std::rc::Rc::try_unwrap(sink).unwrap().into_inner();
    assert_eq!(on.result, plain.result);
    assert_eq!(
        on.cycles, plain.cycles,
        "observation must not perturb cycles"
    );
    assert!(!sink.spans.is_empty(), "recording on actually recorded");
}
