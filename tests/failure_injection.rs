//! Failure injection: every layer must turn misuse into a typed error,
//! never into silent corruption. These mirror the "verification" stage of
//! the paper's tool flow (Figure 4) where incorrect processor models must
//! be caught before synthesis.

use dbasip::cpu::isa::regs::*;
use dbasip::cpu::isa::{ExtOp, Instr, OpArgs};
use dbasip::cpu::{CpuConfig, Processor, ProgramBuilder, SimError, DMEM0_BASE, SYSMEM_BASE};
use dbasip::dbisa::kernels::{hwset, SetLayout};
use dbasip::dbisa::{run_set_op, DbExtConfig, DbExtension, ProcModel, SetOpKind};
use dbasip::mem::MemError;

fn dba_proc() -> Processor {
    let mut p = Processor::new(CpuConfig::local_store_core(1, 64)).unwrap();
    p.attach_extension(Box::new(DbExtension::new(DbExtConfig::one_lsu(true))));
    p
}

#[test]
fn dba_core_touching_system_memory_errors() {
    // The DBA core "has no direct access to the interconnection network".
    let mut b = ProgramBuilder::new();
    b.movi(A2, SYSMEM_BASE as i32);
    b.l32i(A3, A2, 0);
    b.halt();
    let mut p = dba_proc();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(100).unwrap_err();
    assert!(
        matches!(e, SimError::Mem(MemError::Unmapped { .. })),
        "{e:?}"
    );
}

#[test]
fn misaligned_wide_access_errors() {
    let mut b = ProgramBuilder::new();
    b.movi(A2, (DMEM0_BASE + 2) as i32);
    b.l32i(A3, A2, 0);
    b.halt();
    let mut p = dba_proc();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(100).unwrap_err();
    assert!(
        matches!(e, SimError::Mem(MemError::Misaligned { .. })),
        "{e:?}"
    );
}

#[test]
fn out_of_bounds_local_store_errors() {
    let mut b = ProgramBuilder::new();
    b.movi(A2, (DMEM0_BASE + 64 * 1024 - 2) as i32);
    b.l32i(A3, A2, 0); // 4-byte read straddling the end
    b.halt();
    let mut p = dba_proc();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(100).unwrap_err();
    // Canonical straddle diagnosis: the access is routed by its *start*
    // address, so a wide access hanging off the end of the region is a
    // misalignment (4-byte accesses at 4-byte-aligned addresses can never
    // straddle) — one typed error, never silent wraparound.
    assert!(
        matches!(e, SimError::Mem(MemError::Misaligned { align: 4, .. })),
        "{e:?}"
    );
}

#[test]
fn runaway_program_hits_the_cycle_budget() {
    let mut b = ProgramBuilder::new();
    b.label("spin");
    b.j("spin");
    let mut p = dba_proc();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(10_000).unwrap_err();
    assert!(
        matches!(e, SimError::MaxCyclesExceeded { budget: 10_000 }),
        "{e:?}"
    );
}

#[test]
fn unknown_extension_opcode_errors() {
    let mut b = ProgramBuilder::new();
    b.inst(Instr::Ext(ExtOp {
        op: 250,
        args: OpArgs::default(),
    }));
    b.halt();
    let mut p = dba_proc();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(100).unwrap_err();
    assert!(matches!(e, SimError::UnknownExtOp { op: 250 }), "{e:?}");
}

#[test]
fn oversized_unroll_overflows_instruction_memory() {
    // 32 KiB of instruction memory bounds the unroll factor — a real
    // constraint the paper's compiler would hit too.
    let wiring = DbExtConfig::two_lsu(true);
    let layout = SetLayout {
        a_base: 0x6000_0000,
        a_len: 64,
        b_base: 0x6800_0000,
        b_len: 64,
        c_base: 0x6800_1000,
    };
    let prog = hwset::set_op_program(SetOpKind::Union, &wiring, &layout, 4096).unwrap();
    let model = ProcModel::Dba2LsuEis { partial: true };
    let mut p = Processor::new(model.cpu_config()).unwrap();
    p.attach_extension(Box::new(DbExtension::new(wiring)));
    let e = p.load_program(prog).unwrap_err();
    assert!(matches!(e, SimError::BadProgram(_)), "{e:?}");
}

#[test]
fn sentinel_value_in_input_rejected() {
    let e = run_set_op(
        ProcModel::Dba1LsuEis { partial: true },
        SetOpKind::Intersect,
        &[1, u32::MAX],
        &[1],
    )
    .unwrap_err();
    assert!(matches!(e, SimError::BadProgram(_)), "{e:?}");
}

#[test]
fn division_by_zero_reported_with_pc() {
    let mut b = ProgramBuilder::new();
    b.movi(A2, 5);
    b.movi(A3, 0);
    b.quou(A4, A2, A3);
    b.halt();
    let mut p = Processor::new(CpuConfig::small_cached_controller()).unwrap();
    p.load_program(b.build().unwrap()).unwrap();
    match p.run(100).unwrap_err() {
        SimError::DivByZero { pc } => assert!(pc >= dbasip::cpu::IMEM_BASE),
        other => panic!("expected DivByZero, got {other:?}"),
    }
}

#[test]
fn errors_do_not_corrupt_later_runs() {
    // After an error, reloading a good program must work — the simulator
    // carries no poisoned state.
    let mut p = dba_proc();
    let mut bad = ProgramBuilder::new();
    bad.movi(A2, SYSMEM_BASE as i32);
    bad.l32i(A3, A2, 0);
    bad.halt();
    p.load_program(bad.build().unwrap()).unwrap();
    assert!(p.run(100).is_err());

    let mut good = ProgramBuilder::new();
    good.movi(A2, 7);
    good.halt();
    p.load_program(good.build().unwrap()).unwrap();
    p.run(100).unwrap();
    assert_eq!(p.ar[2], 7);
}

#[test]
fn kernel_errors_surface_through_the_runner() {
    // Unsorted input is the user-facing misuse path.
    for bad in [&[3u32, 1][..], &[1, 1][..]] {
        let e = run_set_op(ProcModel::Mini108, SetOpKind::Union, bad, &[2]).unwrap_err();
        assert!(matches!(e, SimError::BadProgram(_)));
    }
}
