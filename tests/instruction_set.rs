//! Per-instruction verification of the DB instruction-set extension —
//! the paper's methodology (Section 3.1): *"In our work, we use a
//! dedicated unit test for each newly introduced instruction. The unit
//! tests compare output results with pre-specified values — especially
//! considering corner cases."*
//!
//! Each test drives one instruction (or one fused instruction) through a
//! minimal program and checks its architecturally visible effect: memory
//! contents, `RUR_*` reads, and the store-path counters.

use dbasip::cpu::isa::{ExtOp, Instr, OpArgs};
use dbasip::cpu::{Processor, SimError, DMEM0_BASE, DMEM1_BASE};
use dbasip::dbisa::{opcodes as op, DbExtConfig, DbExtension, ProcModel};
use dbasip::mem::MemError;

fn proc_2lsu() -> Processor {
    let model = ProcModel::Dba2LsuEis { partial: true };
    let mut p = Processor::new(model.cpu_config()).unwrap();
    p.attach_extension(Box::new(DbExtension::new(DbExtConfig::two_lsu(true))));
    p
}

fn proc_1lsu(partial: bool) -> Processor {
    let model = ProcModel::Dba1LsuEis { partial };
    let mut p = Processor::new(model.cpu_config()).unwrap();
    p.attach_extension(Box::new(DbExtension::new(DbExtConfig::one_lsu(partial))));
    p
}

fn e(o: u16) -> Instr {
    Instr::Ext(ExtOp {
        op: o,
        args: OpArgs::default(),
    })
}

fn e_r(o: u16, r: u8) -> Instr {
    Instr::Ext(ExtOp {
        op: o,
        args: OpArgs { r, s: 0, imm: 0 },
    })
}

fn e_s(o: u16, s: u8) -> Instr {
    Instr::Ext(ExtOp {
        op: o,
        args: OpArgs { r: 0, s, imm: 0 },
    })
}

/// Program prologue: INIT then stream pointers from immediates.
struct Builder(dbasip::cpu::ProgramBuilder);

impl Builder {
    fn new() -> Self {
        let mut b = dbasip::cpu::ProgramBuilder::new();
        b.inst(e(op::INIT));
        Builder(b)
    }

    fn wur(&mut self, o: u16, value: u32) -> &mut Self {
        use dbasip::cpu::isa::regs::A2;
        self.0.movi(A2, value as i32);
        self.0.inst(e_s(o, 2));
        self
    }

    fn i(&mut self, instr: Instr) -> &mut Self {
        self.0.inst(instr);
        self
    }

    fn run(self, p: &mut Processor) -> Result<(), SimError> {
        let mut b = self.0;
        b.halt();
        p.load_program(b.build()?)?;
        p.run(1_000_000)?;
        Ok(())
    }
}

#[test]
fn ld_then_drain_moves_one_beat() {
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[10, 20, 30, 40, 50]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .wur(op::WUR_PTR_C, DMEM1_BASE)
        .i(e(op::LD_A)) // one 128-bit beat into the Load states
        .i(e(op::DRAIN_A)) // Load states -> store FIFO
        .i(e(op::ST_FLUSH));
    b.run(&mut p).unwrap();
    assert_eq!(
        p.mem.peek_words(DMEM1_BASE, 4).unwrap(),
        vec![10, 20, 30, 40]
    );
}

#[test]
fn ld_partial_tail_loads_only_valid_lanes() {
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[7, 8, 99, 99]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 8) // only two elements
        .wur(op::WUR_PTR_C, DMEM1_BASE)
        .i(e(op::LD_A))
        .i(e(op::DRAIN_A))
        .i(e(op::ST_FLUSH))
        .i(e_r(op::RUR_OUT_CNT, 5));
    b.run(&mut p).unwrap();
    assert_eq!(
        p.ar[5], 2,
        "only the two valid elements may reach the output"
    );
    assert_eq!(p.mem.peek_words(DMEM1_BASE, 2).unwrap(), vec![7, 8]);
}

#[test]
fn st_requires_a_full_aligned_beat_and_flush_does_not() {
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[1, 2]).unwrap();
    // Two elements in the FIFO: ST must do nothing, ST_FLUSH must store.
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 8)
        .wur(op::WUR_PTR_C, DMEM1_BASE)
        .i(e(op::LD_A))
        .i(e(op::DRAIN_A))
        .i(e(op::ST)) // no-op: fewer than 4 buffered
        .i(e_r(op::RUR_FIFO_CNT, 5))
        .i(e(op::ST_FLUSH))
        .i(e_r(op::RUR_FIFO_CNT, 6));
    b.run(&mut p).unwrap();
    assert_eq!(p.ar[5], 2, "ST must not store a partial beat");
    assert_eq!(p.ar[6], 0, "ST_FLUSH drains the tail");
}

#[test]
fn rur_done_flags_track_stream_consumption() {
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[1, 2, 3, 4]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .i(e_r(op::RUR_A_DONE, 5)) // before any load: ptr < end -> not done
        .i(e(op::LD_A))
        .i(e_r(op::RUR_A_DONE, 6)) // loaded but buffered -> not done
        .i(e(op::DRAIN_A))
        .i(e_r(op::RUR_A_DONE, 7)) // drained -> done
        .i(e_r(op::RUR_B_DONE, 8)); // B was empty from the start
    b.run(&mut p).unwrap();
    assert_eq!((p.ar[5], p.ar[6], p.ar[7], p.ar[8]), (0, 0, 1, 1));
}

#[test]
fn sort4_ld_sorts_through_the_network() {
    let mut p = proc_1lsu(false);
    p.mem.poke_words(DMEM0_BASE, &[40, 10, 30, 20]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .wur(op::WUR_PTR_C, DMEM0_BASE + 0x100)
        .i(e(op::SORT4_LD))
        .i(e(op::CPY_ST));
    b.run(&mut p).unwrap();
    assert_eq!(
        p.mem.peek_words(DMEM0_BASE + 0x100, 4).unwrap(),
        vec![10, 20, 30, 40],
        "the presort load must emit a sorted block"
    );
}

#[test]
fn cpy_path_is_self_aligning() {
    let mut p = proc_1lsu(true);
    p.mem
        .poke_words(DMEM0_BASE, &(1..=8u32).collect::<Vec<_>>())
        .unwrap();
    // Destination starts mid-beat: the first CPY_ST must stop at the
    // beat boundary, later ones realign.
    let dst = DMEM0_BASE + 0x104; // 4-byte aligned, not 16
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 32)
        .wur(op::WUR_PTR_C, dst);
    for _ in 0..6 {
        b.i(e(op::CPY_LD_A)).i(e(op::CPY_ST));
    }
    b.i(e_r(op::RUR_CPY_PEND, 5));
    b.run(&mut p).unwrap();
    assert_eq!(p.ar[5], 0, "copy must complete");
    assert_eq!(
        p.mem.peek_words(dst, 8).unwrap(),
        (1..=8u32).collect::<Vec<_>>()
    );
}

#[test]
fn store_merge_merges_two_runs() {
    let mut p = proc_1lsu(false);
    // Run 0: 1 3 5 7 ; run 1: 2 4 6 8.
    p.mem.poke_words(DMEM0_BASE, &[1, 3, 5, 7]).unwrap();
    p.mem.poke_words(DMEM0_BASE + 16, &[2, 4, 6, 8]).unwrap();
    let dst = DMEM0_BASE + 0x100;
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .wur(op::WUR_PTR_B, DMEM0_BASE + 16)
        .wur(op::WUR_END_B, DMEM0_BASE + 32)
        .wur(op::WUR_PTR_C, dst)
        .i(e(op::LD_MERGE))
        .i(e(op::LD_MERGE));
    for _ in 0..4 {
        b.i(e_r(op::STORE_MERGE, 7)).i(e(op::LD_MERGE));
    }
    b.i(e(op::ST_FLUSH))
        .i(e(op::ST_FLUSH))
        .i(e_r(op::RUR_OUT_CNT, 5));
    b.run(&mut p).unwrap();
    assert_eq!(p.ar[5], 8);
    assert_eq!(
        p.mem.peek_words(dst, 8).unwrap(),
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    );
    assert_eq!(
        p.ar[7], 0,
        "the final STORE_MERGE must clear the continue flag"
    );
}

#[test]
fn store_merge_with_one_empty_run_copies_through() {
    let mut p = proc_1lsu(false);
    p.mem.poke_words(DMEM0_BASE, &[5, 6, 7, 8]).unwrap();
    let dst = DMEM0_BASE + 0x100;
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .wur(op::WUR_PTR_B, DMEM0_BASE + 16)
        .wur(op::WUR_END_B, DMEM0_BASE + 16) // empty run 1
        .wur(op::WUR_PTR_C, dst)
        .i(e(op::LD_MERGE))
        .i(e(op::LD_MERGE));
    for _ in 0..3 {
        b.i(e_r(op::STORE_MERGE, 7)).i(e(op::LD_MERGE));
    }
    b.i(e(op::ST_FLUSH)).i(e(op::ST_FLUSH));
    b.run(&mut p).unwrap();
    assert_eq!(p.mem.peek_words(dst, 4).unwrap(), vec![5, 6, 7, 8]);
}

#[test]
fn ld_ldp_shuffle_fills_windows_for_the_sop() {
    // The fused instruction must prime the pipeline such that one
    // STORE_SOP emits a match (Figure 11's init sequence).
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[1, 2, 3, 4]).unwrap();
    p.mem.poke_words(DMEM1_BASE, &[2, 4, 6, 8]).unwrap();
    let dst = DMEM1_BASE + 0x100;
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .wur(op::WUR_PTR_B, DMEM1_BASE)
        .wur(op::WUR_END_B, DMEM1_BASE + 16)
        .wur(op::WUR_PTR_C, dst)
        .i(e(op::LD_LDP_SHUFFLE))
        .i(e(op::LD_LDP_SHUFFLE));
    for _ in 0..4 {
        b.i(e_r(op::STORE_SOP_ISECT, 7)).i(e(op::LD_LDP_SHUFFLE));
    }
    for _ in 0..4 {
        b.i(e(op::ST_FLUSH));
    }
    b.i(e_r(op::RUR_OUT_CNT, 5));
    b.run(&mut p).unwrap();
    assert_eq!(p.ar[5], 2);
    assert_eq!(p.mem.peek_words(dst, 2).unwrap(), vec![2, 4]);
}

#[test]
fn sop_bundled_with_ldp_is_a_structural_hazard() {
    let mut p = proc_2lsu();
    let mut b = dbasip::cpu::ProgramBuilder::new();
    b.inst(e(op::INIT));
    b.flix([e(op::SOP_ISECT), e(op::LDP_A)]);
    b.halt();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(1000).unwrap_err();
    assert!(matches!(e, SimError::WriteConflict { .. }), "{e:?}");
}

#[test]
fn duplicated_micro_resource_in_a_bundle_is_rejected() {
    let mut p = proc_2lsu();
    let mut b = dbasip::cpu::ProgramBuilder::new();
    b.inst(e(op::INIT));
    b.flix([e(op::ST), e(op::ST_FLUSH)]); // both need the store unit
    b.halt();
    p.load_program(b.build().unwrap()).unwrap();
    let e = p.run(1000).unwrap_err();
    assert!(matches!(e, SimError::WriteConflict { .. }), "{e:?}");
}

#[test]
fn two_lsu_wiring_rejects_cross_stream_memory() {
    // Stream A must live in DMEM0 on the dual-LSU core; pointing it at
    // DMEM1 is a structural error the memory system catches.
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM1_BASE, &[1, 2, 3, 4]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM1_BASE)
        .wur(op::WUR_END_A, DMEM1_BASE + 16)
        .i(e(op::LD_A));
    let err = b.run(&mut p).unwrap_err();
    assert!(
        matches!(err, SimError::Mem(MemError::Unmapped { .. })),
        "{err:?}"
    );
}

#[test]
fn addi_slot_op_executes_alongside_extension_ops() {
    let mut p = proc_2lsu();
    let mut b = dbasip::cpu::ProgramBuilder::new();
    use dbasip::cpu::isa::regs::{A3, A4};
    b.inst(e(op::INIT));
    b.movi(A3, 10);
    b.movi(A4, 0);
    b.flix([
        e_r(op::RUR_FIFO_CNT, 4),
        Instr::Addi {
            r: A3,
            s: A3,
            imm: 5,
        },
    ]);
    b.halt();
    p.load_program(b.build().unwrap()).unwrap();
    p.run(1000).unwrap();
    assert_eq!(p.ar[3], 15, "the ALU slot op must execute");
    assert_eq!(p.ar[4], 0, "the extension op must execute too");
}

#[test]
fn init_resets_all_states() {
    let mut p = proc_2lsu();
    p.mem.poke_words(DMEM0_BASE, &[1, 2, 3, 4]).unwrap();
    let mut b = Builder::new();
    b.wur(op::WUR_PTR_A, DMEM0_BASE)
        .wur(op::WUR_END_A, DMEM0_BASE + 16)
        .i(e(op::LD_A))
        .i(e(op::DRAIN_A))
        .i(e_r(op::RUR_FIFO_CNT, 5)) // 4 buffered
        .i(e(op::INIT))
        .i(e_r(op::RUR_FIFO_CNT, 6)) // cleared
        .i(e_r(op::RUR_A_DONE, 7)); // pointers cleared -> trivially done
    b.run(&mut p).unwrap();
    assert_eq!((p.ar[5], p.ar[6], p.ar[7]), (4, 0, 1));
}
