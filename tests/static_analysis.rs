//! Negative tests of the static verifier: a table of known-bad programs,
//! each asserting that the expected rule fires at the expected pc — and
//! that the analyzer stays quiet on the known-good built-in kernels.
//!
//! Every rule family (CFG, DF, BND, OPT, MEM) has at least one entry.

use dbasip::analysis::{analyze, has_errors, Diagnostic, RuleId, Severity};
use dbasip::asm::{assemble, disassemble};
use dbasip::cpu::encode::encode_program;
use dbasip::cpu::ext::Extension;
use dbasip::cpu::isa::{ExtOp, Instr, OpArgs, Reg};
use dbasip::cpu::{Program, ProgramBuilder};
use dbasip::dbisa::{opcodes, DbExtConfig, DbExtension, ProcModel};
use proptest::prelude::*;

const A0: Reg = Reg(0);
const A1: Reg = Reg(1);
const A2: Reg = Reg(2);
const A3: Reg = Reg(3);

fn run(program: &Program, model: ProcModel) -> Vec<Diagnostic> {
    let cfg = model.cpu_config();
    let ext = model.wiring().map(DbExtension::new);
    let ext_ref = ext.as_ref().map(|e| e as &dyn Extension);
    analyze(program, ext_ref, &cfg)
}

/// Asserts that `rule` fired at `pc` (and nowhere else is required).
fn assert_fires(diags: &[Diagnostic], rule: RuleId, pc: u32) {
    assert!(
        diags.iter().any(|d| d.rule == rule && d.pc == pc),
        "expected {} at {pc:#010x}, got: {diags:#?}",
        rule.code()
    );
}

fn ext_op(op: u16, r: u8, s: u8) -> Instr {
    Instr::Ext(ExtOp {
        op,
        args: OpArgs { r, s, imm: 0 },
    })
}

// ---- CFG family -----------------------------------------------------------

#[test]
fn cfg01_branch_into_loop_body() {
    let mut b = ProgramBuilder::new();
    b.movi(A1, 4)
        .beqz(A0, "inside") // jumps over the loop header into the body
        .hw_loop(A1, "lend")
        .nop()
        .label("inside")
        .nop()
        .label("lend")
        .halt();
    let p = b.build().unwrap();
    let beqz_pc = p
        .iter()
        .find(|(_, i)| matches!(i, Instr::Beqz { .. }))
        .unwrap()
        .0;
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::LoopBranchIn, beqz_pc);
    assert!(has_errors(&diags));
}

#[test]
fn cfg02_jump_out_of_loop_body() {
    let mut b = ProgramBuilder::new();
    b.movi(A1, 4)
        .hw_loop(A1, "lend")
        .nop()
        .j("after") // leaves the loop armed
        .label("lend")
        .nop()
        .label("after")
        .halt();
    let p = b.build().unwrap();
    let j_pc = p
        .iter()
        .find(|(_, i)| matches!(i, Instr::J { .. }))
        .unwrap()
        .0;
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::LoopBranchOut, j_pc);
}

#[test]
fn cfg02_ret_inside_loop_body() {
    let mut b = ProgramBuilder::new();
    b.movi(A1, 2).hw_loop(A1, "lend").ret().label("lend").halt();
    let p = b.build().unwrap();
    let ret_pc = p.iter().find(|(_, i)| matches!(i, Instr::Ret)).unwrap().0;
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::LoopBranchOut, ret_pc);
}

#[test]
fn cfg03_nested_hardware_loops() {
    // The core has a single LBEGIN/LEND/LCOUNT set: an inner `loop`
    // inside an outer body silently retargets the outer loop.
    let mut b = ProgramBuilder::new();
    b.movi(A1, 4)
        .movi(A2, 4)
        .hw_loop(A1, "louter")
        .hw_loop(A2, "linner")
        .nop()
        .label("linner")
        .nop()
        .label("louter")
        .halt();
    let p = b.build().unwrap();
    let inner_pc = p
        .iter()
        .filter(|(_, i)| matches!(i, Instr::Loop { .. }))
        .nth(1)
        .unwrap()
        .0;
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::LoopMalformed, inner_pc);
}

#[test]
fn cfg04_unreachable_code_warns() {
    let mut b = ProgramBuilder::new();
    b.halt().movi(A1, 1).halt();
    let p = b.build().unwrap();
    let dead_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::Unreachable, dead_pc);
    // Unreachability alone is not an error.
    assert!(!has_errors(&diags));
}

#[test]
fn cfg07_unreachable_basic_block() {
    // An unconditional jump over two instructions leaves a whole
    // leader-delimited block dead; CFG07 reports it once, at the leader,
    // alongside the per-instruction CFG04 findings.
    let mut b = ProgramBuilder::new();
    b.j("end").movi(A1, 1).movi(A2, 2).label("end").halt();
    let p = b.build().unwrap();
    let leader_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::UnreachableBlock, leader_pc);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.rule == RuleId::UnreachableBlock)
            .count(),
        1,
        "one finding per dead block, not per instruction: {diags:#?}"
    );
    assert!(!has_errors(&diags));
}

#[test]
fn cfg07_partially_live_block_is_quiet() {
    // A conditional branch target block is reachable on the fall-through
    // path: no block-level finding.
    let mut b = ProgramBuilder::new();
    b.beqz(A0, "skip")
        .movi(A1, 1)
        .label("skip")
        .movi(A2, 2)
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::UnreachableBlock),
        "every block is reachable: {diags:#?}"
    );
}

// ---- DF family ------------------------------------------------------------

#[test]
fn df01_use_before_init() {
    let mut b = ProgramBuilder::new();
    b.add(A1, A2, A3).halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::UseBeforeInit, p.addr_of(0));
    assert!(!has_errors(&diags), "reads of reset-zero regs are warnings");
}

#[test]
fn df02_dead_write() {
    let mut b = ProgramBuilder::new();
    b.movi(A1, 5)
        .movi(A1, 6)
        .movi(A2, dbasip::cpu::SYSMEM_BASE as i32)
        .s32i(A1, A2, 0)
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Mini108);
    assert_fires(&diags, RuleId::DeadWrite, p.addr_of(0));
    assert!(!has_errors(&diags));
}

#[test]
fn df03_state_read_before_init() {
    // `db.st` drains the SOP FIFO — but nothing ever configured the unit
    // (no `db.init`, no pointer setup).
    let mut b = ProgramBuilder::new();
    b.movi(A1, 0).inst(ext_op(opcodes::ST, 0, 1)).halt();
    let p = b.build().unwrap();
    let st_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::StateUseBeforeInit, st_pc);
}

#[test]
fn df_init_clears_state_warnings() {
    // The same program preceded by `db.init` is clean: INIT initializes
    // every extension state.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .movi(A1, 0)
        .inst(ext_op(opcodes::ST, 0, 1))
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::StateUseBeforeInit),
        "INIT must satisfy state initialization: {diags:#?}"
    );
}

#[test]
fn df10_state_parameter_written_but_never_read() {
    // `db.wur.ptra` loads the stream-A pointer, but no stream op ever
    // consumes it before the kernel exits: the configuration is dead.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .movi(A1, dbasip::cpu::DMEM0_BASE as i32)
        .inst(ext_op(opcodes::WUR_PTR_A, 0, 1))
        .halt();
    let p = b.build().unwrap();
    let wur_pc = p.addr_of(2);
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::StateDeadWrite, wur_pc);
    assert!(!has_errors(&diags), "a dead parameter store is a warning");
}

#[test]
fn df10_consumed_parameter_is_quiet() {
    // The same pointer setup followed by a stream load that reads it —
    // and the stream-op family itself (LD_A leaves `ld_a` set at exit,
    // which is idiomatic, not dead) — must stay silent.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .movi(A1, dbasip::cpu::DMEM0_BASE as i32)
        .inst(ext_op(opcodes::WUR_PTR_A, 0, 1))
        .inst(ext_op(opcodes::WUR_END_A, 0, 1))
        .inst(ext_op(opcodes::LD_A, 0, 0))
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::StateDeadWrite),
        "consumed parameters must not flag DF10: {diags:#?}"
    );
}

// ---- BND family -----------------------------------------------------------

#[test]
fn bnd01_lsu_double_claim_in_bundle() {
    // On the 1-LSU wiring both stream loaders share LSU0; bundling them
    // double-books the port.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .flix([ext_op(opcodes::LD_A, 0, 0), ext_op(opcodes::LD_B, 0, 0)])
        .halt();
    let p = b.build().unwrap();
    let bundle_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::LsuConflict, bundle_pc);
}

#[test]
fn bnd01_same_pair_is_legal_on_two_lsus() {
    // The identical bundle is the whole point of the 2-LSU model
    // (Section 4.3): LD_A on LSU0, LD_B on LSU1.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .flix([ext_op(opcodes::LD_A, 0, 0), ext_op(opcodes::LD_B, 0, 0)])
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba2LsuEis { partial: true });
    assert!(
        !diags.iter().any(|d| d.rule == RuleId::LsuConflict),
        "no conflict expected with two LSUs: {diags:#?}"
    );
}

#[test]
fn bnd02_op_wired_to_missing_lsu() {
    // A program built for the 2-LSU wiring (LD_B on LSU1) analyzed
    // against the 1-LSU core.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .flix([ext_op(opcodes::LD_B, 0, 0)])
        .halt();
    let p = b.build().unwrap();
    let bundle_pc = p.addr_of(1);
    let cfg = ProcModel::Dba1LsuEis { partial: true }.cpu_config();
    let ext = DbExtension::new(DbExtConfig::two_lsu(true));
    let diags = analyze(&p, Some(&ext as &dyn Extension), &cfg);
    assert_fires(&diags, RuleId::LsuOutOfRange, bundle_pc);
}

#[test]
fn bnd03_double_register_write_in_bundle() {
    let mut b = ProgramBuilder::new();
    b.movi(A2, 1)
        .movi(A3, 2)
        .flix([
            Instr::Addi {
                r: A1,
                s: A2,
                imm: 1,
            },
            Instr::Addi {
                r: A1,
                s: A3,
                imm: 2,
            },
        ])
        .movi(A2, 0)
        .s32i(A1, A2, 0)
        .halt();
    let p = b.build().unwrap();
    let bundle_pc = p.addr_of(2);
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::RegWriteConflict, bundle_pc);
}

#[test]
fn bnd04_double_state_write_in_bundle() {
    // Two set-operation steps in one cycle would both write the SOP state.
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0))
        .flix([
            ext_op(opcodes::SOP_ISECT, 0, 0),
            ext_op(opcodes::SOP_UNION, 0, 0),
        ])
        .halt();
    let p = b.build().unwrap();
    let bundle_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::StateWriteConflict, bundle_pc);
}

#[test]
fn bnd05_slot_ineligible_ext_op() {
    // The builder already rejects base instructions in FLIX slots, so the
    // analyzer's BND05 is exercised through an extension op whose
    // descriptor declares it slot-ineligible (a multi-cycle-format op a
    // real TIE compiler would keep out of shared formats).
    use dbasip::cpu::ext::{LsuUse, OpDescriptor, TieCtx};
    use dbasip::cpu::SimError;

    struct NoSlotExt;
    impl Extension for NoSlotExt {
        fn name(&self) -> &'static str {
            "noslot"
        }
        fn op_count(&self) -> u16 {
            1
        }
        fn op_descriptor(&self, op: u16) -> Result<OpDescriptor, SimError> {
            if op != 0 {
                return Err(SimError::UnknownExtOp { op });
            }
            Ok(OpDescriptor {
                name: "noslot.op",
                lsu: LsuUse::None,
                writes_ar: false,
                reads_ar: false,
                states_written: &[],
                states_read: &[],
                slot_ok: false,
                latency: 1,
            })
        }
        fn execute(&mut self, _: &[(u16, OpArgs)], _: &mut TieCtx<'_>) -> Result<u32, SimError> {
            Ok(0)
        }
        fn reset(&mut self) {}
    }

    let mut b = ProgramBuilder::new();
    b.flix([ext_op(0, 0, 0)]).halt();
    let p = b.build().unwrap();
    let bundle_pc = p.addr_of(0);
    let cfg = ProcModel::Dba1LsuEis { partial: true }.cpu_config();
    let diags = analyze(&p, Some(&NoSlotExt as &dyn Extension), &cfg);
    assert_fires(&diags, RuleId::SlotIneligible, bundle_pc);
}

#[test]
fn bnd06_flix_on_core_without_flix() {
    let mut b = ProgramBuilder::new();
    b.flix([Instr::Nop]).halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Mini108);
    assert_fires(&diags, RuleId::FlixUnsupported, p.addr_of(0));
}

// ---- OPT family -----------------------------------------------------------

#[test]
fn opt01_division_without_divider() {
    // The local-store cores drop the divider (Section 4.1); Mini108 has it.
    let mut b = ProgramBuilder::new();
    b.movi(A2, 6).movi(A3, 3).quou(A1, A2, A3).jx(A1);
    let p = b.build().unwrap();
    let quou_pc = p.addr_of(2);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::DivUnavailable, quou_pc);
    assert!(!run(&p, ProcModel::Mini108)
        .iter()
        .any(|d| d.rule == RuleId::DivUnavailable));
}

#[test]
fn opt02_ext_op_without_extension() {
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::INIT, 0, 0)).halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1Lsu); // no EIS on this model
    assert_fires(&diags, RuleId::NoExtension, p.addr_of(0));
}

#[test]
fn opt03_unknown_opcode() {
    let mut b = ProgramBuilder::new();
    b.inst(ext_op(opcodes::COUNT + 7, 0, 0)).halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    assert_fires(&diags, RuleId::UnknownExtOp, p.addr_of(0));
}

// ---- MEM family -----------------------------------------------------------

#[test]
fn mem01_store_past_end_of_local_store() {
    let cfg = ProcModel::Dba1Lsu.cpu_config();
    let dmem_end = dbasip::cpu::DMEM0_BASE + (cfg.dmem_kb_per_lsu as u32) * 1024;
    let mut b = ProgramBuilder::new();
    // The word store straddles the end of local store 0 by two bytes.
    b.movi(A1, (dmem_end - 2) as i32).s32i(A2, A1, 0).halt();
    let p = b.build().unwrap();
    let store_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::OobAccess, store_pc);
    assert!(has_errors(&diags));
}

#[test]
fn mem01_tracks_addi_derived_addresses() {
    // The offending address is built Movi + Addi + Addx4, like real
    // kernel prologues.
    let cfg = ProcModel::Dba1Lsu.cpu_config();
    let dmem_bytes = (cfg.dmem_kb_per_lsu as u32) * 1024;
    let mut b = ProgramBuilder::new();
    b.movi(A1, dbasip::cpu::DMEM0_BASE as i32)
        .movi(A2, (dmem_bytes / 4) as i32) // element count == capacity
        .addx4(A1, A2, A1) // a1 = base + 4*count == one past the end
        .s32i(A3, A1, 0)
        .halt();
    let p = b.build().unwrap();
    let store_pc = p.addr_of(3);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::OobAccess, store_pc);
}

#[test]
fn mem02_sysmem_unreachable_from_local_store_core() {
    // The DBA cores trade away the system bus (Section 4.1): a constant
    // SYSMEM address is a guaranteed bus error there, fine on Mini108.
    let mut b = ProgramBuilder::new();
    b.movi(A1, dbasip::cpu::SYSMEM_BASE as i32)
        .l32i(A2, A1, 0)
        .movi(A3, dbasip::cpu::DMEM0_BASE as i32)
        .s32i(A2, A3, 0)
        .halt();
    let p = b.build().unwrap();
    let load_pc = p.addr_of(1);
    let diags = run(&p, ProcModel::Dba1Lsu);
    assert_fires(&diags, RuleId::UnmappedAccess, load_pc);
    // Mini108 has core system-memory access: the same load is legal there
    // (the DMEM0 store is not — that core has no local stores).
    assert!(
        !run(&p, ProcModel::Mini108)
            .iter()
            .any(|d| d.rule == RuleId::UnmappedAccess && d.pc == load_pc),
        "Mini108 has core system-memory access"
    );
}

// ---- severity ordering and built-in kernels -------------------------------

#[test]
fn diagnostics_sorted_by_pc_then_severity() {
    let mut b = ProgramBuilder::new();
    b.add(A1, A2, A3) // DF01 warning at pc0
        .inst(ext_op(opcodes::COUNT, 0, 0)) // OPT03 error later
        .halt();
    let p = b.build().unwrap();
    let diags = run(&p, ProcModel::Dba1LsuEis { partial: true });
    let pcs: Vec<u32> = diags.iter().map(|d| d.pc).collect();
    let mut sorted = pcs.clone();
    sorted.sort();
    assert_eq!(pcs, sorted, "diagnostics must come back sorted by pc");
}

#[test]
fn builtin_kernels_are_clean() {
    use dbasip::dbisa::kernels::{hwset, scalar, SetLayout};
    use dbasip::dbisa::SetOpKind;
    let layout = SetLayout {
        a_base: dbasip::cpu::DMEM0_BASE,
        a_len: 64,
        b_base: dbasip::cpu::DMEM0_BASE + 0x1000,
        b_len: 64,
        c_base: dbasip::cpu::DMEM0_BASE + 0x2000,
    };
    for kind in [
        SetOpKind::Intersect,
        SetOpKind::Union,
        SetOpKind::Difference,
    ] {
        let sp = scalar::set_op_program(kind, &layout).unwrap();
        let diags = run(&sp, ProcModel::Dba1Lsu);
        assert!(diags.is_empty(), "scalar {kind:?}: {diags:#?}");

        let wiring = DbExtConfig::one_lsu(true);
        let hp = hwset::set_op_program(kind, &wiring, &layout, hwset::DEFAULT_UNROLL).unwrap();
        let diags = run(&hp, ProcModel::Dba1LsuEis { partial: true });
        assert!(diags.is_empty(), "EIS {kind:?}: {diags:#?}");
    }
}

#[test]
fn preflight_gates_bad_programs_and_passes_good_runs() {
    use dbasip::analysis::preflight;
    // A guaranteed-fault program is rejected before execution...
    let mut b = ProgramBuilder::new();
    b.movi(A1, 0x1000).l32i(A2, A1, 0).jx(A2);
    let p = b.build().unwrap();
    let cfg = ProcModel::Dba1Lsu.cpu_config();
    let err = preflight(&p, None, &cfg).unwrap_err();
    assert!(
        err.to_string().contains("static verification failed"),
        "unexpected error: {err}"
    );

    // ...while the real kernels run unchanged with the hook armed.
    dbasip::dbisa::set_preflight(true);
    let a: Vec<u32> = (0..200).map(|i| 3 * i).collect();
    let b: Vec<u32> = (0..200).map(|i| 2 * i).collect();
    let run = dbasip::dbisa::run_set_op(
        ProcModel::Dba2LsuEis { partial: true },
        dbasip::dbisa::SetOpKind::Intersect,
        &a,
        &b,
    );
    dbasip::dbisa::set_preflight(false);
    let run = run.expect("preflight must not reject the built-in kernel");
    let expect: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
    assert_eq!(run.result, expect);
}

// ---- severity contract ----------------------------------------------------

#[test]
fn severity_split_matches_hardware_guarantees() {
    // Warnings: defined but suspicious.
    for rule in [
        RuleId::UseBeforeInit,
        RuleId::DeadWrite,
        RuleId::StateUseBeforeInit,
        RuleId::Unreachable,
    ] {
        let mut b = ProgramBuilder::new();
        b.add(A1, A2, A3).movi(A1, 1).movi(A1, 2).halt().nop();
        let p = b.build().unwrap();
        let diags = run(&p, ProcModel::Dba1Lsu);
        for d in diags.iter().filter(|d| d.rule == rule) {
            assert_eq!(d.severity, Severity::Warning, "{}", rule.code());
        }
    }
}

// ---- assembler round-trip property ----------------------------------------

fn roundtrip_instr_strategy() -> impl Strategy<Value = Instr> {
    let r = || (0u8..16).prop_map(Reg::new);
    prop_oneof![
        Just(Instr::Nop),
        (r(), -2048i32..2048).prop_map(|(rr, imm)| Instr::Movi { r: rr, imm }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Add { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Sub { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Minu { r: a, s, t }),
        (r(), r(), any::<i16>()).prop_map(|(a, s, imm)| Instr::Addi { r: a, s, imm }),
        (r(), r(), 0u8..32).prop_map(|(a, s, sa)| Instr::Slli { r: a, s, sa }),
        (r(), r(), 0u16..1024).prop_map(|(a, s, off)| Instr::Load {
            width: dbasip::cpu::isa::LsWidth::W32,
            r: a,
            s,
            off
        }),
        (r(), r(), 0u16..1024).prop_map(|(t, s, off)| Instr::Store {
            width: dbasip::cpu::isa::LsWidth::W32,
            t,
            s,
            off
        }),
        (0u16..opcodes::COUNT, 0u8..16, 0u8..16).prop_map(|(o, rr, s)| Instr::Ext(ExtOp {
            op: o,
            args: OpArgs { r: rr, s, imm: 0 }
        })),
    ]
}

proptest! {
    /// Any program the builder accepts survives disassemble → assemble
    /// with a bit-identical binary image (satellite of the verifier: the
    /// lint CLI assembles `.s` files, so text must be a faithful carrier).
    #[test]
    fn programs_roundtrip_through_assembly(
        instrs in proptest::collection::vec(roundtrip_instr_strategy(), 1..48)
    ) {
        let ext = DbExtension::new(DbExtConfig::two_lsu(true));
        let mut b = ProgramBuilder::new();
        for mut i in instrs {
            // Canonicalize ext-op operands to what assembly can express:
            // the textual form carries `r` only for AR-writing ops.
            if let Instr::Ext(ref mut e) = i {
                let writes_ar = ext
                    .op_descriptor(e.op)
                    .map(|d| d.writes_ar)
                    .unwrap_or(false);
                if !writes_ar {
                    e.args.r = 0;
                }
            }
            b.inst(i);
        }
        b.halt();
        let p1 = b.build().unwrap();
        let text = disassemble(&p1, Some(&ext));
        let p2 = assemble(&text, Some(&ext)).unwrap();
        prop_assert_eq!(
            encode_program(&p1).unwrap(),
            encode_program(&p2).unwrap(),
            "disassembly was not a faithful carrier:\n{}",
            text
        );
    }
}
