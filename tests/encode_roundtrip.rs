//! Property tests of the binary toolchain: every constructible
//! instruction must survive encode → decode, and every program must
//! survive assemble → disassemble → assemble.

use dbasip::asm::{assemble, disassemble};
use dbasip::cpu::encode::{decode_instr, encode_instr, encode_program};
use dbasip::cpu::isa::{BranchCond, ExtOp, Instr, LsWidth, OpArgs, Reg};
use dbasip::cpu::{ProgramBuilder, IMEM_BASE};
use dbasip::dbisa::{DbExtConfig, DbExtension};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn cond_strategy() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn width_strategy() -> impl Strategy<Value = LsWidth> {
    prop_oneof![Just(LsWidth::B8), Just(LsWidth::H16), Just(LsWidth::W32)]
}

/// Branch targets must be word-aligned and in 15-bit word range of the
/// instruction (the tightest encoding).
fn target_strategy() -> impl Strategy<Value = u32> {
    (-8000i32..8000).prop_map(|w| IMEM_BASE.wrapping_add(0x8000).wrapping_add((w * 4) as u32))
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        (r(), any::<i32>()).prop_map(|(rr, imm)| Instr::Movi { r: rr, imm }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Add { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Addx4 { r: a, s, t }),
        (r(), r(), any::<i16>()).prop_map(|(a, s, imm)| Instr::Addi { r: a, s, imm }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Sub { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Xor { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::And { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Or { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Minu { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Maxu { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Min { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Max { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Mull { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Quou { r: a, s, t }),
        (r(), r(), r()).prop_map(|(a, s, t)| Instr::Remu { r: a, s, t }),
        (r(), r(), 0u8..32).prop_map(|(a, s, sa)| Instr::Srli { r: a, s, sa }),
        (r(), r(), 0u8..32).prop_map(|(a, s, sa)| Instr::Srai { r: a, s, sa }),
        target_strategy().prop_map(|target| Instr::Call0 { target }),
        (r(), r(), 0u8..32).prop_map(|(a, s, sa)| Instr::Slli { r: a, s, sa }),
        (r(), r(), 0u8..32, 1u8..17).prop_map(|(a, s, shift, bits)| Instr::Extui {
            r: a,
            s,
            shift,
            bits
        }),
        (width_strategy(), r(), r(), any::<u16>()).prop_map(|(width, a, s, off)| Instr::Load {
            width,
            r: a,
            s,
            off
        }),
        (width_strategy(), r(), r(), any::<u16>()).prop_map(|(width, t, s, off)| Instr::Store {
            width,
            t,
            s,
            off
        }),
        (cond_strategy(), r(), r(), target_strategy())
            .prop_map(|(cond, s, t, target)| Instr::Branch { cond, s, t, target }),
        (r(), target_strategy()).prop_map(|(s, target)| Instr::Beqz { s, target }),
        (r(), target_strategy()).prop_map(|(s, target)| Instr::Bnez { s, target }),
        target_strategy().prop_map(|target| Instr::J { target }),
        r().prop_map(|s| Instr::Jx { s }),
        (r(), target_strategy()).prop_map(|(s, end)| Instr::Loop { s, end }),
        (0u16..256, 0u8..16, 0u8..16, -16i8..16).prop_map(|(o, rr, s, imm)| Instr::Ext(ExtOp {
            op: o,
            args: OpArgs { r: rr, s, imm }
        })),
    ]
}

fn slot_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        (0u16..256, 0u8..16, 0u8..16).prop_map(|(o, rr, s)| Instr::Ext(ExtOp {
            op: o,
            args: OpArgs { r: rr, s, imm: 0 }
        })),
        (reg_strategy(), reg_strategy(), -128i16..128).prop_map(|(a, s, imm)| Instr::Addi {
            r: a,
            s,
            imm
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_instruction_roundtrips(i in instr_strategy()) {
        let pc = IMEM_BASE + 0x8000;
        let enc = encode_instr(&i, pc).unwrap();
        let back = decode_instr(enc.w0, enc.w1, pc).unwrap();
        prop_assert_eq!(i, back);
    }

    #[test]
    fn bundles_roundtrip(slots in proptest::collection::vec(slot_strategy(), 0..4)) {
        let i = Instr::Flix(slots.into_boxed_slice());
        let pc = IMEM_BASE;
        let enc = encode_instr(&i, pc).unwrap();
        let back = decode_instr(enc.w0, enc.w1, pc).unwrap();
        prop_assert_eq!(i, back);
    }

    #[test]
    fn program_images_have_declared_size(
        instrs in proptest::collection::vec(instr_strategy(), 1..64)
    ) {
        // Replace target-carrying instructions with NOPs: random targets
        // rarely land on instruction boundaries of a random program.
        let mut b = ProgramBuilder::new();
        for i in instrs {
            if i.is_control() || matches!(i, Instr::Loop { .. }) {
                b.nop();
            } else {
                b.inst(i);
            }
        }
        b.halt();
        let p = b.build().unwrap();
        let image = encode_program(&p).unwrap();
        prop_assert_eq!(image.len() as u32, p.size_bytes());
    }
}

#[test]
fn assembly_roundtrip_of_a_real_kernel() {
    // Disassemble the actual EIS intersection kernel and reassemble it:
    // the binary images must be identical.
    use dbasip::dbisa::kernels::{hwset, SetLayout};
    use dbasip::dbisa::SetOpKind;
    let wiring = DbExtConfig::two_lsu(true);
    let ext = DbExtension::new(wiring);
    let layout = SetLayout {
        a_base: 0x6000_0000,
        a_len: 100,
        b_base: 0x6800_0000,
        b_len: 100,
        c_base: 0x6800_1000,
    };
    let p1 = hwset::set_op_program(SetOpKind::Union, &wiring, &layout, 4).unwrap();
    let text = disassemble(&p1, Some(&ext));
    let p2 = assemble(&text, Some(&ext)).unwrap();
    assert_eq!(
        encode_program(&p1).unwrap(),
        encode_program(&p2).unwrap(),
        "reassembled kernel must be bit-identical"
    );
}
