//! Chaos-tested durability: whatever byte the machine dies at, recovery
//! yields exactly a committed prefix of the history — never a torn
//! commit, never a resurrected dropped write — and recovering twice
//! yields the same state.
//!
//! Two layers:
//!
//! * the storage crate's built-in [`run_campaign`] (kill-at-every-offset
//!   sweeps with and without snapshots, targeted torn-write / bit-flip /
//!   dropped-fsync / truncated-snapshot scenarios, seeded fault storms),
//!   run here on the default seed and on `DBX_STORAGE_SEED` so CI can
//!   matrix over seeds;
//! * a property test that generates *random* commit histories and
//!   snapshot cadences, cuts the newest WAL segment at **every** byte
//!   offset, and checks the recovered digest against the independently
//!   predicted durable prefix.

use dbasip::storage::{
    digest_tables, run_campaign, CampaignConfig, Columns, Disk, MemDisk, Store, StoreOptions,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[test]
fn the_default_campaign_passes() {
    let report = run_campaign(&CampaignConfig::default());
    assert!(report.ok(), "failures: {:?}", report.failures);
    assert!(report.offsets_tested > 0);
    assert!(report.scenarios_run >= 6);
}

/// CI drives a seed matrix through this test via `DBX_STORAGE_SEED`.
#[test]
fn the_seeded_campaign_passes() {
    let seed = std::env::var("DBX_STORAGE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11u64);
    let report = run_campaign(&CampaignConfig {
        seed,
        ..Default::default()
    });
    assert!(report.ok(), "seed {seed} failures: {:?}", report.failures);
    // The digest is a function of the seed alone: running the campaign
    // twice must fold to the same value (cross-host determinism).
    let again = run_campaign(&CampaignConfig {
        seed,
        ..Default::default()
    });
    assert_eq!(report.digest, again.digest, "campaign digest unstable");
}

/// One random commit: which table, and what to do to it.
#[derive(Debug, Clone)]
enum Op {
    Append { table: u8, rows: Vec<u32> },
    Create { table: u8 },
    Drop { table: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, proptest::collection::vec(0u32..100, 1..5))
            .prop_map(|(table, rows)| Op::Append { table, rows }),
        (0u8..4).prop_map(|table| Op::Create { table }),
        (0u8..4).prop_map(|table| Op::Drop { table }),
    ]
}

fn table_name(i: u8) -> String {
    format!("t{i}")
}

/// Applies one op as a commit, fixing it up so it always validates
/// (creates become appends on live tables and vice versa) — every
/// generated commit really lands in the WAL.
fn apply(store: &mut Store<MemDisk>, live: &mut BTreeMap<u8, bool>, op: &Op) {
    let mut txn = store.begin();
    match op {
        Op::Append { table, rows } => {
            let cols: Columns = vec![("k".into(), rows.clone())];
            if live.get(table).copied().unwrap_or(false) {
                txn.append_rows(&table_name(*table), cols);
            } else {
                txn.create_table(&table_name(*table), cols);
                live.insert(*table, true);
            }
        }
        Op::Create { table } => {
            let cols: Columns = vec![("k".into(), vec![7])];
            if live.get(table).copied().unwrap_or(false) {
                txn.append_rows(&table_name(*table), cols);
            } else {
                txn.create_table(&table_name(*table), cols);
                live.insert(*table, true);
            }
        }
        Op::Drop { table } => {
            if live.get(table).copied().unwrap_or(false) {
                txn.drop_table(&table_name(*table));
                live.insert(*table, false);
            } else {
                txn.create_table(&table_name(*table), vec![("k".into(), vec![1, 2])]);
                live.insert(*table, true);
            }
        }
    }
    store.commit(txn).expect("fixed-up commit must validate");
}

/// Largest snapshot LSN durably on disk.
fn newest_snapshot_lsn(disk: &MemDisk) -> u64 {
    disk.list()
        .into_iter()
        .filter_map(|f| {
            f.strip_prefix("snap-")?
                .strip_suffix(".img")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for a random history and snapshot
    /// cadence, a crash at ANY byte offset of the newest WAL segment
    /// recovers exactly the longest fully-durable committed prefix —
    /// and a second recovery of the same disk changes nothing.
    #[test]
    fn any_cut_offset_recovers_a_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 3..10),
        snapshot_every in prop_oneof![Just(0u64), Just(2u64), Just(3u64)],
    ) {
        // Clean run, recording the digest and WAL position after every
        // commit. checkpoints[i] = state after i commits.
        let mut store = Store::open(MemDisk::new(), StoreOptions {
            snapshot_every,
            ..Default::default()
        }).expect("open");
        let mut live = BTreeMap::new();
        let mut checkpoints = vec![digest_tables(&BTreeMap::new())];
        let mut positions = Vec::new();
        for op in &ops {
            apply(&mut store, &mut live, op);
            checkpoints.push(store.state_digest());
            let (seg, end) = store.last_commit_position().expect("position").clone();
            positions.push((seg, end));
        }
        let disk = store.into_disk();
        let last_seg = positions.last().expect("nonempty").0.clone();
        let seg_len = disk.durable_image(&last_seg).map_or(0, <[u8]>::len);

        for cut in 0..=seg_len {
            let mut crashed = disk.clone();
            crashed.crash();
            let bytes = crashed.durable_image(&last_seg).expect("segment").to_vec();
            crashed.set_file(&last_seg, dbasip::faults::StorageFileClass::Wal, bytes[..cut].to_vec());

            // Predicted survivor: newest durable snapshot, or the last
            // commit living in an older segment or fully before the cut.
            let snap_lsn = newest_snapshot_lsn(&crashed);
            let mut want = snap_lsn as usize;
            for (i, (seg, end)) in positions.iter().enumerate() {
                if *seg != last_seg || *end <= cut {
                    want = want.max(i + 1);
                }
            }

            let recovered = Store::open(crashed, StoreOptions::default()).expect("recover");
            prop_assert_eq!(
                recovered.state_digest(), checkpoints[want],
                "cut at {}/{} expected prefix of {} commits", cut, seg_len, want
            );

            // Idempotency: recovering the recovered disk is a no-op.
            let digest = recovered.state_digest();
            let again = Store::open(recovered.into_disk(), StoreOptions::default())
                .expect("re-recover");
            prop_assert_eq!(again.state_digest(), digest, "second recovery diverged");
        }
    }
}
